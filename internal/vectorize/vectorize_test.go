package vectorize

import (
	"testing"

	"repro/internal/armlite"
	"repro/internal/asm"
	"repro/internal/cpu"
)

const sumSrc = `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #100
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`

func seed(m *cpu.Machine) {
	a := make([]int32, 128)
	b := make([]int32, 128)
	for i := range a {
		a[i] = int32(i*i - 7)
		b[i] = int32(300 - 2*i)
	}
	m.Mem.WriteWords(0x1000, a)
	m.Mem.WriteWords(0x2000, b)
}

func compileRun(t *testing.T, src string, opts Options, setup func(*cpu.Machine)) (*cpu.Machine, *cpu.Machine, *Report) {
	t.Helper()
	prog := asm.MustAssemble("t", src)
	ref := cpu.MustNew(prog, cpu.DefaultConfig())
	if setup != nil {
		setup(ref)
	}
	if err := ref.Run(nil); err != nil {
		t.Fatal(err)
	}
	vec, rep, err := AutoVectorize(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.MustNew(vec, cpu.DefaultConfig())
	if setup != nil {
		setup(m)
	}
	if err := m.Run(nil); err != nil {
		t.Fatalf("vectorized program failed: %v\n%s", err, vec)
	}
	return ref, m, rep
}

func wordsEqual(t *testing.T, ref, got *cpu.Machine, addr uint32, n int, what string) {
	t.Helper()
	w, _ := ref.Mem.ReadWords(addr, n)
	g, _ := got.Mem.ReadWords(addr, n)
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: word %d = %d, want %d", what, i, g[i], w[i])
		}
	}
}

func TestVectorizeSum(t *testing.T) {
	ref, m, rep := compileRun(t, sumSrc, Options{}, seed)
	wordsEqual(t, ref, m, 0x3000, 100, "sum out")
	if rep.VectorizedCount() != 1 {
		t.Fatalf("vectorized %d loops; report %+v", rep.VectorizedCount(), rep)
	}
	if m.Counts.VecOps == 0 || m.Counts.VecLoads == 0 {
		t.Error("no NEON activity in compiled program")
	}
	if m.Ticks >= ref.Ticks {
		t.Errorf("compiled %d ticks, scalar %d", m.Ticks, ref.Ticks)
	}
	// Register architectural state must match the scalar run.
	for _, r := range []armlite.Reg{armlite.R0, armlite.R2, armlite.R5, armlite.R10} {
		if m.R[r] != ref.R[r] {
			t.Errorf("final %v = %#x, want %#x", r, m.R[r], ref.R[r])
		}
	}
}

func TestVectorizeNonMultipleTrip(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #5
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #23
        blt   loop
        halt
`
	ref, m, rep := compileRun(t, src, Options{}, seed)
	wordsEqual(t, ref, m, 0x3000, 23, "out")
	if rep.VectorizedCount() != 1 {
		t.Fatalf("report %+v", rep)
	}
	if m.R[armlite.R0] != 23 {
		t.Errorf("counter = %d", m.R[armlite.R0])
	}
}

func TestInhibitorConditional(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5, r0, lsl #2]
        cmp   r3, #0
        blt   skip
        str   r3, [r2, r0, lsl #2]
skip:   add   r0, r0, #1
        cmp   r0, #50
        blt   loop
        halt
`
	_, _, rep := compileRun(t, src, Options{NoAlias: true}, seed)
	if rep.VectorizedCount() != 0 {
		t.Fatal("conditional loop must not vectorize statically")
	}
	if rep.Inhibitors()[InhibitConditional] == 0 {
		t.Errorf("inhibitors = %v", rep.Inhibitors())
	}
}

func TestInhibitorDynamicCount(t *testing.T) {
	// The limit register is loaded from memory: not a compile-time
	// constant (Table 1 line 4).
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
        ldr   r4, [r5, #512]
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	setup := func(m *cpu.Machine) {
		seed(m)
		m.Mem.Store(0x1200, 4, 10)
	}
	_, _, rep := compileRun(t, src, Options{NoAlias: true}, setup)
	if rep.VectorizedCount() != 0 {
		t.Fatal("dynamic-range loop must not vectorize statically")
	}
	if rep.Inhibitors()[InhibitDynamicCount] == 0 {
		t.Errorf("inhibitors = %v", rep.Inhibitors())
	}
}

func TestInhibitorSentinel(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        strb  r3, [r2], #1
        b     loop
done:   halt
`
	setup := func(m *cpu.Machine) {
		m.Mem.WriteBytes(0x1000, append(make([]byte, 0), 5, 6, 7, 0))
	}
	_, _, rep := compileRun(t, src, Options{NoAlias: true}, setup)
	if rep.VectorizedCount() != 0 {
		t.Fatal("sentinel loop must not vectorize statically")
	}
}

func TestInhibitorFunctionCall(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        bl    f
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #30
        blt   loop
        halt
f:      add   r3, r3, #1
        bx    lr
`
	_, _, rep := compileRun(t, src, Options{NoAlias: true}, seed)
	if rep.VectorizedCount() != 0 {
		t.Fatal("function loop must not vectorize statically")
	}
	if rep.Inhibitors()[InhibitFunctionCall] == 0 {
		t.Errorf("inhibitors = %v", rep.Inhibitors())
	}
}

func TestInhibitorAliasing(t *testing.T) {
	// Bases come from registers the compiler cannot resolve.
	src := `
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #30
        blt   loop
        halt
`
	setup := func(m *cpu.Machine) {
		seed(m)
		m.R[armlite.R5] = 0x1000
		m.R[armlite.R2] = 0x3000
	}
	ref, m, rep := compileRun(t, src, Options{}, setup)
	if rep.VectorizedCount() != 0 {
		t.Fatal("unknown bases must inhibit without NoAlias")
	}
	if rep.Inhibitors()[InhibitAliasing] == 0 {
		t.Errorf("inhibitors = %v", rep.Inhibitors())
	}
	// With restrict semantics asserted it vectorizes.
	ref2, m2, rep2 := compileRun(t, src, Options{NoAlias: true}, setup)
	if rep2.VectorizedCount() != 1 {
		t.Fatalf("NoAlias run: %+v", rep2)
	}
	wordsEqual(t, ref2, m2, 0x3000, 30, "noalias out")
	_ = ref
	_ = m
}

func TestInhibitorDependency(t *testing.T) {
	// v[i+2] = v[i] + 1 on the same (resolved) base: provable RAW.
	src := `
        mov   r5, #0x1000
        mov   r2, #0x1008
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #30
        blt   loop
        halt
`
	_, _, rep := compileRun(t, src, Options{NoAlias: true}, seed)
	if rep.VectorizedCount() != 0 {
		t.Fatal("provable RAW must inhibit")
	}
	if rep.Inhibitors()[InhibitDependency] == 0 {
		t.Errorf("inhibitors = %v", rep.Inhibitors())
	}
}

func TestInPlaceUpdateVectorizes(t *testing.T) {
	// v[i] = v[i]*3 in place: same base, load precedes store.
	src := `
        mov   r5, #0x1000
        mov   r2, #0x1000
        mov   r6, #3
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        mul   r3, r3, r6
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #40
        blt   loop
        halt
`
	ref, m, rep := compileRun(t, src, Options{}, seed)
	if rep.VectorizedCount() != 1 {
		t.Fatalf("in-place update should vectorize: %+v", rep)
	}
	wordsEqual(t, ref, m, 0x1000, 40, "in-place out")
}

func TestNestedLoopInnerVectorized(t *testing.T) {
	// Matrix-ish: outer over rows, inner over columns with reg-offset
	// addressing; the inner loop vectorizes once, and the rewritten
	// program stays correct across outer iterations.
	src := `
        mov   r8, #0          ; row
outer:  mov   r0, #0          ; col
loop:   ldr   r3, [r5, r0, lsl #2]
        ldr   r1, [r10, r0, lsl #2]
        add   r3, r3, r1
        str   r3, [r2, r0, lsl #2]
        add   r0, r0, #1
        cmp   r0, #32
        blt   loop
        add   r5, r5, #128
        add   r10, r10, #128
        add   r2, r2, #128
        add   r8, r8, #1
        cmp   r8, #4
        blt   outer
        halt
`
	setup := func(m *cpu.Machine) {
		seed(m)
		m.R[armlite.R5] = 0x1000
		m.R[armlite.R10] = 0x2000
		m.R[armlite.R2] = 0x3000
	}
	ref, m, rep := compileRun(t, src, Options{NoAlias: true}, setup)
	if rep.VectorizedCount() != 1 {
		t.Fatalf("inner loop should vectorize: %+v", rep)
	}
	wordsEqual(t, ref, m, 0x3000, 128, "nested out")
	if m.Ticks >= ref.Ticks {
		t.Errorf("no speedup: %d vs %d", m.Ticks, ref.Ticks)
	}
}

func TestVectorizeBytes(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldrb  r3, [r5], #1
        add   r3, r3, #1
        strb  r3, [r2], #1
        add   r0, r0, #1
        cmp   r0, #100
        blt   loop
        halt
`
	setup := func(m *cpu.Machine) {
		b := make([]byte, 128)
		for i := range b {
			b[i] = byte(i * 3)
		}
		m.Mem.WriteBytes(0x1000, b)
	}
	ref, m, rep := compileRun(t, src, Options{NoAlias: true}, setup)
	if rep.VectorizedCount() != 1 {
		t.Fatalf("byte loop should vectorize: %+v", rep)
	}
	w, _ := ref.Mem.ReadBytes(0x3000, 100)
	g, _ := m.Mem.ReadBytes(0x3000, 100)
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("byte %d = %d, want %d", i, g[i], w[i])
		}
	}
	if rep.Loops[0].Lanes != 16 {
		t.Errorf("lanes = %d, want 16", rep.Loops[0].Lanes)
	}
}

func TestVectorizeFloat(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldrf  r3, [r5], #4
        ldrf  r1, [r10], #4
        fmul  r3, r3, r1
        strf  r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #50
        blt   loop
        halt
`
	setup := func(m *cpu.Machine) {
		a := make([]float32, 64)
		b := make([]float32, 64)
		for i := range a {
			a[i] = float32(i) + 0.25
			b[i] = 1.5
		}
		m.Mem.WriteFloats(0x1000, a)
		m.Mem.WriteFloats(0x2000, b)
	}
	ref, m, rep := compileRun(t, src, Options{NoAlias: true}, setup)
	if rep.VectorizedCount() != 1 {
		t.Fatalf("float loop should vectorize: %+v", rep)
	}
	w, _ := ref.Mem.ReadFloats(0x3000, 50)
	g, _ := m.Mem.ReadFloats(0x3000, 50)
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("float %d = %v, want %v", i, g[i], w[i])
		}
	}
}

func TestRewrittenProgramValidates(t *testing.T) {
	prog := asm.MustAssemble("t", sumSrc)
	vec, _, err := AutoVectorize(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original must be untouched.
	if len(prog.Code) == len(vec.Code) {
		t.Error("program was not rewritten")
	}
	reparsed, err := asm.Assemble("rt", vec.String())
	if err != nil {
		t.Fatalf("disassembly does not reassemble: %v\n%s", err, vec)
	}
	if len(reparsed.Code) != len(vec.Code) {
		t.Error("round-trip length mismatch")
	}
}

// TestVectorizeCountDown: subs/bne count-down loops compile too.
func TestVectorizeCountDown(t *testing.T) {
	src := `
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #40
loop:   ldr   r3, [r5], #4
        add   r3, r3, #6
        str   r3, [r2], #4
        subs  r0, r0, #1
        bne   loop
        halt
`
	ref, m, rep := compileRun(t, src, Options{}, seed)
	if rep.VectorizedCount() != 1 {
		t.Fatalf("count-down loop should vectorize: %+v", rep)
	}
	wordsEqual(t, ref, m, 0x3000, 40, "countdown out")
	if m.R[armlite.R0] != 0 {
		t.Errorf("counter = %d, want 0", m.R[armlite.R0])
	}
}
