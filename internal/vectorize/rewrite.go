package vectorize

import (
	"fmt"

	"repro/internal/armlite"
)

// rewriteLoop replaces a verified loop with:
//
//	preamble   — cursor setup, vdup broadcasts, chunk counter
//	vector loop — vld1 / vector ops / vst1, subs/bne
//	fixups     — advance induction registers past the vector part
//	remainder  — the original scalar body (1..lanes iterations)
//
// The chunk count is (trip-1)/lanes so the remainder loop always runs
// at least once, preserving the original exit flags and register
// state exactly.
func rewriteLoop(p *armlite.Program, an *analysis) (*armlite.Program, error) {
	lanes := an.lanes
	chunks := (an.trip - 1) / lanes
	if chunks < 1 {
		return nil, fmt.Errorf("too few iterations")
	}

	free := append([]armlite.Reg(nil), an.freeRegs...)
	takeFree := func() (armlite.Reg, error) {
		if len(free) == 0 {
			return armlite.NoReg, fmt.Errorf("no free scalar registers")
		}
		r := free[0]
		free = free[1:]
		return r, nil
	}

	// Vector register assignment.
	if len(an.nodes) > armlite.NumVRegs {
		return nil, fmt.Errorf("vector register pressure")
	}
	for i, n := range an.nodes {
		n.vreg = armlite.VReg(i)
	}

	var pre, vbody, fix []armlite.Instr
	dt := an.elemDT

	// Cursors.
	cursorOf := make(map[*stream]armlite.Reg)
	vecAdvanced := make(map[armlite.Reg]bool) // bases advanced by writeback
	for _, st := range an.streams {
		if st.node == nil && st.value == nil {
			continue // CSE'd duplicate load
		}
		if st.cursorIsVec {
			cursorOf[st] = st.base
			vecAdvanced[st.base] = true
			continue
		}
		cur, err := takeFree()
		if err != nil {
			return nil, err
		}
		cursorOf[st] = cur
		switch st.mode {
		case armlite.AddrRegOffset:
			if st.shift != 0 {
				pre = append(pre, armlite.ALUImm(armlite.OpLsl, cur, st.idx, int32(st.shift)))
				pre = append(pre, armlite.ALUReg(armlite.OpAdd, cur, st.base, cur))
			} else {
				pre = append(pre, armlite.ALUReg(armlite.OpAdd, cur, st.base, st.idx))
			}
		case armlite.AddrOffset:
			pre = append(pre, armlite.ALUImm(armlite.OpAdd, cur, st.base, st.offset))
		default:
			return nil, fmt.Errorf("unexpected cursor mode")
		}
	}

	// Broadcast setup (invariants and immediates).
	var immTemp armlite.Reg = armlite.NoReg
	for _, n := range an.nodes {
		switch n.kind {
		case sInit:
			pre = append(pre, armlite.VDup(dt, n.vreg, n.reg))
		case sImm:
			if immTemp == armlite.NoReg {
				r, err := takeFree()
				if err != nil {
					return nil, err
				}
				immTemp = r
			}
			pre = append(pre, armlite.MovImm(immTemp, n.imm))
			pre = append(pre, armlite.VDup(dt, n.vreg, immTemp))
		}
	}

	// Runtime versioning guards, as the NEON-era auto-vectorizer
	// emits: each stream's cursor is tested for 16-byte alignment and
	// misaligned entries fall back to the untouched scalar loop (the
	// remainder copy runs the full trip because no fixup has executed
	// yet). These guards are the per-entry cost behind the paper's
	// small auto-vectorization penalties on short loops.
	var guards []armlite.Instr
	for _, st := range an.streams {
		if st.node == nil && st.value == nil {
			continue
		}
		if st.hasConst {
			continue // alignment statically known: no runtime check
		}
		tst := armlite.NewInstr(armlite.OpTst)
		tst.Rn = cursorOf[st]
		tst.Imm, tst.HasImm = armlite.VectorBytes-1, true
		guards = append(guards, tst, armlite.BranchLabel(armlite.CondNE, ""))
	}
	pre = append(pre, guards...)

	// Chunk counter.
	rChunk, err := takeFree()
	if err != nil {
		return nil, err
	}
	pre = append(pre, armlite.MovImm(rChunk, int32(chunks)))

	// Vector body: loads (body order), expressions (topological),
	// stores (body order).
	for _, st := range an.streams {
		if st.node != nil {
			vbody = append(vbody, armlite.VLoad(dt, st.node.vreg, cursorOf[st], true))
		}
	}
	for _, n := range an.nodes {
		if n.kind != sExpr {
			continue
		}
		vop, ok := armlite.VectorALUOp(n.op)
		if !ok {
			return nil, fmt.Errorf("no vector form for %v", n.op)
		}
		if vop == armlite.OpVshl || vop == armlite.OpVshr {
			vbody = append(vbody, armlite.VShiftImm(vop, dt, n.vreg, n.a.vreg, n.imm))
		} else {
			vbody = append(vbody, armlite.VALU(vop, dt, n.vreg, n.a.vreg, n.b.vreg))
		}
	}
	for _, st := range an.streams {
		if st.value != nil {
			vbody = append(vbody, armlite.VStore(dt, st.value.vreg, cursorOf[st], true))
		}
	}
	sub := armlite.ALUImm(armlite.OpSub, rChunk, rChunk, 1)
	sub.SetFlags = true
	vbody = append(vbody, sub)
	// Back-branch target patched after layout.
	vbody = append(vbody, armlite.Branch(armlite.CondNE, -1))

	// Fixups: advance induction registers the vector loop did not, in
	// register order so the emitted program is deterministic (snapshot
	// fingerprints hash the listing).
	advanced := int64(chunks * lanes)
	for r := armlite.Reg(0); r < armlite.NumRegs; r++ {
		d, ok := an.induction[r]
		if !ok || vecAdvanced[r] {
			continue
		}
		fix = append(fix, armlite.ALUImm(armlite.OpAdd, r, r, int32(d*advanced)))
	}

	// Remainder: the original scalar body.
	remainder := append([]armlite.Instr(nil), p.Code[an.lp.start:an.lp.branch+1]...)

	// --- splice ---------------------------------------------------------
	start, branch := an.lp.start, an.lp.branch
	vecStart := start + len(pre)
	remStart := vecStart + len(vbody) + len(fix)
	vbody[len(vbody)-1].Target = vecStart
	remainder[len(remainder)-1].Target = remStart
	remainder[len(remainder)-1].Label = ""
	// Alignment guards bail out to the full scalar loop.
	for i := range pre {
		if pre[i].Op == armlite.OpB && pre[i].Target < 0 {
			pre[i].Target = remStart
		}
	}

	block := make([]armlite.Instr, 0, len(pre)+len(vbody)+len(fix)+len(remainder))
	block = append(block, pre...)
	block = append(block, vbody...)
	block = append(block, fix...)
	block = append(block, remainder...)

	oldLen := branch - start + 1
	delta := len(block) - oldLen

	out := &armlite.Program{Name: p.Name, Labels: make(map[string]int, len(p.Labels))}
	out.Code = append(out.Code, p.Code[:start]...)
	out.Code = append(out.Code, block...)
	out.Code = append(out.Code, p.Code[branch+1:]...)

	// Fix branch targets outside the replaced block.
	adjust := func(tgt int) int {
		switch {
		case tgt <= start:
			return tgt
		case tgt > branch:
			return tgt + delta
		default:
			// Into the old body: redirect to the remainder copy.
			return remStart + (tgt - start)
		}
	}
	for pc := range out.Code {
		inBlock := pc >= start && pc < start+len(block)
		if inBlock {
			continue // block targets already absolute
		}
		in := &out.Code[pc]
		if in.Op == armlite.OpB || in.Op == armlite.OpBL {
			in.Target = adjust(in.Target)
		}
	}
	for name, idx := range p.Labels {
		out.Labels[name] = adjust(idx)
	}
	return out, nil
}
