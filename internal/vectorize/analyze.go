package vectorize

import (
	"repro/internal/armlite"
	"repro/internal/dsa"
)

// snode is a static dataflow node over one loop body.
type snode struct {
	kind sKind
	pc   int         // sLoad: stream's instruction index
	reg  armlite.Reg // sInit: loop-invariant register
	imm  int32
	op   armlite.Op
	a, b *snode

	vreg armlite.VReg
}

type sKind int

const (
	sLoad sKind = iota
	sInit
	sImm
	sExpr
)

// stream is one memory access stream of the loop.
type stream struct {
	pc     int
	store  bool
	dt     armlite.DataType
	size   int
	mode   armlite.AddrKind
	base   armlite.Reg
	idx    armlite.Reg
	shift  uint8
	offset int32
	stride int64

	// Provenance for alias checks: resolved constant start address,
	// when derivable.
	constBase   int64
	hasConst    bool
	value       *snode // stores
	node        *snode // loads (CSE)
	bodyOrder   int    // position within the body
	cursorIsVec bool   // post-index base doubles as the vector cursor
}

// analysis is a fully verified, vectorizable loop.
type analysis struct {
	lp   loopRange
	prog *armlite.Program

	counter  armlite.Reg
	delta    int64
	startVal int64
	limitVal int64
	cmpPC    int
	trip     int

	induction map[armlite.Reg]int64
	streams   []*stream
	nodes     []*snode
	stores    []*stream
	elemDT    armlite.DataType
	lanes     int
	freeRegs  []armlite.Reg
}

// analyzeLoop runs every static check of Table 1 against one loop.
func analyzeLoop(p *armlite.Program, lp loopRange, opts Options) (*analysis, string) {
	code := p.Code
	body := code[lp.start : lp.branch+1]

	// --- control-flow checks -----------------------------------------
	for i, in := range body {
		pc := lp.start + i
		switch in.Op {
		case armlite.OpBL, armlite.OpBX:
			return nil, InhibitFunctionCall // Table 1 line 10
		case armlite.OpHalt:
			return nil, InhibitControlFlow
		case armlite.OpB:
			if pc == lp.branch {
				continue
			}
			if in.Target >= lp.start && in.Target <= lp.branch {
				return nil, InhibitConditional // line 12
			}
			return nil, InhibitDynamicCount // sentinel exit: line 4
		}
	}
	// Branches into the middle of the body from outside.
	for pc, in := range code {
		if (pc < lp.start || pc > lp.branch) && in.Op.IsBranch() &&
			in.Target > lp.start && in.Target <= lp.branch {
			return nil, InhibitControlFlow
		}
	}

	// --- induction deltas ---------------------------------------------
	induction := make(map[armlite.Reg]int64)
	otherDef := make(map[armlite.Reg]bool)
	for _, in := range body {
		if in.Op.IsMem() && in.Mem.Writeback {
			induction[in.Mem.Base] += int64(in.Mem.Offset)
			if in.Mem.Kind == armlite.AddrOffset { // vector "[rn]!" form
				induction[in.Mem.Base] += armlite.VectorBytes
			}
			if in.Op == armlite.OpLdr || in.Op == armlite.OpVld1 {
				if in.Rd.Valid() && in.Rd != in.Mem.Base {
					otherDef[in.Rd] = true
				}
			}
			continue
		}
		switch {
		case (in.Op == armlite.OpAdd || in.Op == armlite.OpSub) &&
			in.HasImm && in.Rd == in.Rn:
			d := int64(in.Imm)
			if in.Op == armlite.OpSub {
				d = -d
			}
			induction[in.Rd] += d
		default:
			for _, r := range in.Defs().Regs() {
				otherDef[r] = true
			}
		}
	}
	for r := range otherDef {
		delete(induction, r) // mixed defs disqualify induction
	}

	// --- trip count (must be static: line 4) ---------------------------
	an := &analysis{lp: lp, prog: p, induction: induction}
	if inh := an.deriveStaticTrip(body, opts); inh != InhibitNone {
		return nil, inh
	}

	// --- symbolic dataflow ---------------------------------------------
	if inh := an.extract(body); inh != InhibitNone {
		return nil, inh
	}

	// --- dependence / aliasing -----------------------------------------
	if inh := an.checkDependence(opts); inh != InhibitNone {
		return nil, inh
	}

	if an.trip-1 < an.lanes {
		return nil, InhibitTooShort
	}
	an.freeRegs = freeRegisters(p)
	return an, InhibitNone
}

// resolveConst chases a register's value backwards from instruction
// index at (exclusive) through mov/add/sub/lsl immediates. It fails
// when a branch target lands between the definition and the use (some
// other path could produce a different value).
func resolveConst(p *armlite.Program, r armlite.Reg, at int, depth int) (int64, bool) {
	if depth > 8 || !r.Valid() {
		return 0, false
	}
	for pc := at - 1; pc >= 0; pc-- {
		in := p.Code[pc]
		if !in.Defs().Has(r) {
			continue
		}
		// Any branch targeting (pc, at) could bypass this definition.
		// A branch to `at` itself (e.g. the loop's own back-branch)
		// re-enters after the definition executed at least once.
		for _, b := range p.Code {
			if b.Op.IsBranch() && b.Op != armlite.OpBX && b.Target > pc && b.Target < at {
				return 0, false
			}
		}
		switch {
		case in.Op == armlite.OpMov && in.HasImm:
			return int64(in.Imm), true
		case in.Op == armlite.OpAdd && in.HasImm:
			v, ok := resolveConst(p, in.Rn, pc, depth+1)
			return v + int64(in.Imm), ok
		case in.Op == armlite.OpSub && in.HasImm:
			v, ok := resolveConst(p, in.Rn, pc, depth+1)
			return v - int64(in.Imm), ok
		case in.Op == armlite.OpLsl && in.HasImm:
			v, ok := resolveConst(p, in.Rn, pc, depth+1)
			return v << uint(in.Imm), ok
		default:
			return 0, false
		}
	}
	return 0, false
}

// deriveStaticTrip finds the compare/branch mechanism and computes the
// compile-time trip count.
func (an *analysis) deriveStaticTrip(body []armlite.Instr, opts Options) string {
	lp := an.lp
	br := body[len(body)-1]
	if br.Cond == armlite.CondAL {
		return InhibitDynamicCount
	}
	// Last flag-setter in the body.
	fsIdx := -1
	for i := len(body) - 2; i >= 0; i-- {
		if body[i].Op.SetsFlagsAlways() || body[i].SetFlags {
			fsIdx = i
			break
		}
	}
	if fsIdx < 0 {
		return InhibitDynamicCount
	}
	fs := body[fsIdx]
	an.cmpPC = lp.start + fsIdx

	ti := dsa.TripInfo{Cond: br.Cond, CmpPC: an.cmpPC, CounterIsRn: true}
	switch {
	case fs.Op == armlite.OpCmp && fs.HasImm:
		d, ok := an.induction[fs.Rn]
		if !ok || d == 0 {
			return InhibitDynamicCount
		}
		an.counter, an.delta = fs.Rn, d
		an.limitVal = int64(fs.Imm)
	case fs.Op == armlite.OpCmp:
		dn, okN := an.induction[fs.Rn]
		dm, okM := an.induction[fs.Rm]
		switch {
		case okN && dn != 0 && !okM:
			an.counter, an.delta = fs.Rn, dn
			lv, ok := resolveConst(an.prog, fs.Rm, lp.start, 0)
			if !ok {
				return InhibitDynamicCount
			}
			an.limitVal = lv
		case okM && dm != 0 && !okN:
			an.counter, an.delta = fs.Rm, dm
			lv, ok := resolveConst(an.prog, fs.Rn, lp.start, 0)
			if !ok {
				return InhibitDynamicCount
			}
			an.limitVal = lv
			ti.CounterIsRn = false
		default:
			return InhibitDynamicCount
		}
	case (fs.Op == armlite.OpSub || fs.Op == armlite.OpAdd) && fs.SetFlags && fs.Rd == fs.Rn:
		d, ok := an.induction[fs.Rd]
		if !ok || d == 0 {
			return InhibitDynamicCount
		}
		an.counter, an.delta = fs.Rd, d
		an.limitVal = 0
	default:
		return InhibitDynamicCount
	}
	ti.CounterReg = an.counter
	ti.Delta = an.delta
	ti.LimitIsImm = true
	ti.Unsigned = br.Cond == armlite.CondHS || br.Cond == armlite.CondLO ||
		br.Cond == armlite.CondHI || br.Cond == armlite.CondLS

	sv, ok := resolveConst(an.prog, an.counter, lp.start, 0)
	if !ok {
		return InhibitDynamicCount
	}
	an.startVal = sv

	// The body runs once, then the branch tests cond(counter, limit).
	c := sv + an.delta
	rem, ok := ti.Remaining(uint32(c), uint32(an.limitVal))
	if !ok {
		return InhibitDynamicCount
	}
	an.trip = 1 + rem
	return InhibitNone
}

// freeRegisters returns general-purpose registers never referenced by
// the program (available to emitted code).
func freeRegisters(p *armlite.Program) []armlite.Reg {
	var used armlite.RegSet
	for _, in := range p.Code {
		used = used.Union(in.Uses()).Union(in.Defs())
		if in.Op.IsMem() {
			used.Add(in.Mem.Base)
			used.Add(in.Mem.Index)
		}
		if in.Op == armlite.OpVdup {
			used.Add(in.Rn)
		}
	}
	used.Add(armlite.PC)
	used.Add(armlite.SP)
	used.Add(armlite.LR)
	var free []armlite.Reg
	for r := armlite.Reg(0); r < armlite.NumRegs; r++ {
		if !used.Has(r) {
			free = append(free, r)
		}
	}
	return free
}
