package vectorize

import (
	"repro/internal/armlite"
)

// extract runs the symbolic dataflow pass over the loop body, building
// streams and the operation DAG.
func (an *analysis) extract(body []armlite.Instr) string {
	lp := an.lp
	sym := make(map[armlite.Reg]*snode)
	loadCSE := make(map[int]*snode)
	initCSE := make(map[armlite.Reg]*snode)
	immCSE := make(map[int32]*snode)
	elemSize := 0
	isFloat := false

	addNode := func(n *snode) *snode {
		an.nodes = append(an.nodes, n)
		return n
	}
	operand := func(r armlite.Reg, idx int) (*snode, string) {
		if n := sym[r]; n != nil {
			return n, InhibitNone
		}
		if _, isInd := an.induction[r]; isInd {
			return nil, InhibitNoPattern // induction value used as data
		}
		// Read-before-write of a computed register: last iteration's
		// value carried around (Table 1 line 5).
		for j := idx; j < len(body); j++ {
			if body[j].Defs().Has(r) {
				return nil, InhibitCarryAround
			}
		}
		if n := initCSE[r]; n != nil {
			return n, InhibitNone
		}
		n := addNode(&snode{kind: sInit, reg: r})
		initCSE[r] = n
		return n, InhibitNone
	}
	immNode := func(v int32) *snode {
		if n := immCSE[v]; n != nil {
			return n
		}
		n := addNode(&snode{kind: sImm, imm: v})
		immCSE[v] = n
		return n
	}
	setElem := func(dt armlite.DataType) string {
		if elemSize == 0 {
			elemSize = dt.Size()
			isFloat = dt.IsFloat()
			an.elemDT = dt.Vector()
			an.lanes = an.elemDT.Lanes()
			return InhibitNone
		}
		if dt.Size() != elemSize || dt.IsFloat() != isFloat {
			return InhibitMixedWidth
		}
		return InhibitNone
	}

	for i, in := range body {
		pc := lp.start + i
		if pc == an.cmpPC || pc == lp.branch {
			continue
		}
		// Structural induction updates.
		if (in.Op == armlite.OpAdd || in.Op == armlite.OpSub) && in.HasImm && in.Rd == in.Rn {
			if _, ok := an.induction[in.Rd]; ok {
				continue
			}
		}
		if in.Cond != armlite.CondAL {
			return InhibitConditional
		}
		switch in.Op {
		case armlite.OpNop:
			continue

		case armlite.OpLdr:
			st, inh := an.classifyStream(&in, pc, false, i)
			if inh != InhibitNone {
				return inh
			}
			if inh := setElem(in.DT); inh != InhibitNone {
				return inh
			}
			if n := loadCSE[pc]; n != nil {
				sym[in.Rd] = n
			} else {
				n = addNode(&snode{kind: sLoad, pc: pc})
				loadCSE[pc] = n
				st.node = n
				sym[in.Rd] = n
			}
			an.streams = append(an.streams, st)

		case armlite.OpStr:
			st, inh := an.classifyStream(&in, pc, true, i)
			if inh != InhibitNone {
				return inh
			}
			if inh := setElem(in.DT); inh != InhibitNone {
				return inh
			}
			v, inh := operand(in.Rd, i)
			if inh != InhibitNone {
				return inh
			}
			st.value = v
			an.streams = append(an.streams, st)
			an.stores = append(an.stores, st)

		case armlite.OpMov:
			if in.HasImm {
				sym[in.Rd] = immNode(in.Imm)
			} else {
				n, inh := operand(in.Rm, i)
				if inh != InhibitNone {
					return inh
				}
				sym[in.Rd] = n
			}

		case armlite.OpAdd, armlite.OpSub, armlite.OpRsb, armlite.OpMul,
			armlite.OpAnd, armlite.OpOrr, armlite.OpEor,
			armlite.OpFAdd, armlite.OpFSub, armlite.OpFMul:
			a, inh := operand(in.Rn, i)
			if inh != InhibitNone {
				return inh
			}
			var b *snode
			if in.HasImm {
				b = immNode(in.Imm)
			} else {
				if b, inh = operand(in.Rm, i); inh != InhibitNone {
					return inh
				}
			}
			op := in.Op
			if op == armlite.OpRsb {
				op = armlite.OpSub
				a, b = b, a
			}
			if _, ok := armlite.VectorALUOp(op); !ok {
				return InhibitUnsupportedOp
			}
			sym[in.Rd] = addNode(&snode{kind: sExpr, op: op, a: a, b: b})

		case armlite.OpMla:
			a, inh := operand(in.Rn, i)
			if inh != InhibitNone {
				return inh
			}
			b, inh := operand(in.Rm, i)
			if inh != InhibitNone {
				return inh
			}
			c, inh := operand(in.Ra, i)
			if inh != InhibitNone {
				return inh
			}
			mul := addNode(&snode{kind: sExpr, op: armlite.OpMul, a: a, b: b})
			sym[in.Rd] = addNode(&snode{kind: sExpr, op: armlite.OpAdd, a: mul, b: c})

		case armlite.OpLsl, armlite.OpAsr:
			if !in.HasImm || (elemSize != 0 && elemSize != 4) {
				return InhibitUnsupportedOp
			}
			a, inh := operand(in.Rn, i)
			if inh != InhibitNone {
				return inh
			}
			sym[in.Rd] = addNode(&snode{kind: sExpr, op: in.Op, a: a, imm: in.Imm})

		default:
			return InhibitUnsupportedOp
		}
	}
	if len(an.stores) == 0 {
		return InhibitNoPattern
	}
	return InhibitNone
}

// classifyStream derives the stride and provenance of one memory
// operand.
func (an *analysis) classifyStream(in *armlite.Instr, pc int, store bool, order int) (*stream, string) {
	st := &stream{pc: pc, store: store, dt: in.DT, size: in.DT.Size(),
		mode: in.Mem.Kind, base: in.Mem.Base, idx: in.Mem.Index,
		shift: in.Mem.Shift, offset: in.Mem.Offset, bodyOrder: order}
	switch in.Mem.Kind {
	case armlite.AddrPostIndex:
		d, ok := an.induction[in.Mem.Base]
		if !ok || d == 0 {
			return nil, InhibitNoPattern
		}
		if d != int64(st.size) {
			return nil, InhibitIndirect // non-unit stride: line 7
		}
		st.stride = d
		st.cursorIsVec = true
	case armlite.AddrRegOffset:
		d, ok := an.induction[in.Mem.Index]
		if !ok || d == 0 {
			return nil, InhibitNoPattern
		}
		if _, baseInd := an.induction[in.Mem.Base]; baseInd {
			return nil, InhibitNoPattern
		}
		st.stride = d << in.Mem.Shift
		if st.stride != int64(st.size) {
			return nil, InhibitIndirect
		}
	case armlite.AddrOffset:
		d, ok := an.induction[in.Mem.Base]
		if !ok || d == 0 {
			return nil, InhibitNoPattern
		}
		if d != int64(st.size) {
			return nil, InhibitIndirect
		}
		st.stride = d
	default:
		return nil, InhibitNoPattern
	}
	// Provenance for alias reasoning.
	if bv, ok := resolveConst(an.prog, st.base, an.lp.start, 0); ok {
		off := int64(0)
		switch st.mode {
		case armlite.AddrRegOffset:
			iv, ok := resolveConst(an.prog, st.idx, an.lp.start, 0)
			if !ok {
				return st, InhibitNone
			}
			off = iv << st.shift
		case armlite.AddrOffset:
			off = int64(st.offset)
		}
		st.constBase = bv + off
		st.hasConst = true
	}
	return st, InhibitNone
}

// checkDependence applies the static dependence rules: provable RAW
// distances inhibit vectorization (the static compiler has no partial
// vectorization); unprovable aliasing inhibits unless asserted away.
func (an *analysis) checkDependence(opts Options) string {
	n := an.trip
	for _, s := range an.streams {
		if !s.store {
			continue
		}
		for _, l := range an.streams {
			if l.store {
				continue
			}
			inh := an.pairCheck(s, l, n, opts)
			if inh != InhibitNone {
				return inh
			}
		}
	}
	return InhibitNone
}

func (an *analysis) pairCheck(s, l *stream, n int, opts Options) string {
	sameShape := s.base == l.base && s.idx == l.idx && s.shift == l.shift &&
		s.mode == l.mode
	switch {
	case s.hasConst && l.hasConst:
		// Fully resolved: exact range math over n iterations.
		sLo, sHi := s.constBase, s.constBase+int64(n-1)*s.stride+int64(s.size)-1
		lLo, lHi := l.constBase, l.constBase+int64(n-1)*l.stride+int64(l.size)-1
		if sLo > sHi {
			sLo, sHi = sHi-int64(s.size)+1, sLo+int64(s.size)-1
		}
		if lLo > lHi {
			lLo, lHi = lHi-int64(l.size)+1, lLo+int64(l.size)-1
		}
		if sHi < lLo || lHi < sLo {
			return InhibitNone
		}
		return an.distanceCheck(s.constBase, l.constBase, s, l)
	case sameShape:
		// Same symbolic base: constant relative offset.
		dOff := int64(s.offset) - int64(l.offset)
		return an.distanceCheck(dOff, 0, s, l)
	default:
		if opts.NoAlias {
			return InhibitNone // asserted restrict semantics
		}
		return InhibitAliasing // Table 1 lines 2/6
	}
}

// distanceCheck evaluates the RAW distance between a store stream at
// base sAddr and a load stream at base lAddr with equal strides.
func (an *analysis) distanceCheck(sAddr, lAddr int64, s, l *stream) string {
	if s.stride != l.stride {
		return InhibitDependency
	}
	d := sAddr - lAddr
	if d == 0 {
		// Same element each iteration: fine only if the load precedes
		// the store in the body (read-modify-write).
		if l.bodyOrder < s.bodyOrder {
			return InhibitNone
		}
		return InhibitDependency
	}
	dist := d / s.stride
	if d%s.stride != 0 {
		// Overlapping but misaligned streams: unprovable, reject.
		return InhibitDependency
	}
	if dist > 0 {
		// A future load reads this store: loop-carried RAW.
		return InhibitDependency
	}
	// dist < 0: loads run ahead of stores (WAR) — safe, because the
	// generated chunk performs all loads before its stores and chunks
	// execute in order.
	return InhibitNone
}
