package vectorize_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/vectorize"
)

// ExampleAutoVectorize compiles a count loop statically and shows both
// the success and a Table 1 inhibitor on a dynamic-range loop.
func ExampleAutoVectorize() {
	prog, err := asm.Assemble("kernel", `
        mov   r5, #0x1000
        mov   r2, #0x2000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #64
        blt   loop
        ldr   r4, [r2]        ; runtime value…
        mov   r0, #0
loop2:  ldr   r3, [r5], #4
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4          ; …bounds this loop: not fixed at compile time
        blt   loop2
        halt`)
	if err != nil {
		log.Fatal(err)
	}
	_, report, err := vectorize.AutoVectorize(prog, vectorize.Options{NoAlias: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range report.Loops {
		if l.Vectorized {
			fmt.Printf("loop @%d: vectorized ×%d (trip %d)\n", l.Start, l.Lanes, l.TripCount)
		} else {
			fmt.Printf("loop @%d: %s\n", l.Start, l.Inhibitor)
		}
	}
	// Unordered output:
	// loop @11: iteration-count-not-fixed
	// loop @3: vectorized ×4 (trip 64)
}
