// Package vectorize implements the static auto-vectorizing compiler
// the DSA is evaluated against — a model of the ARM NEON
// auto-vectorization the dissertation's Table 1 characterizes. It
// rewrites armlite programs at "compile time": loops that pass every
// static check are replaced by a NEON vector loop plus a scalar
// remainder; loops that fail are left scalar and the failure is
// reported with the corresponding Table 1 inhibitor.
//
// The static limits are the point: trip counts must be compile-time
// constants (inhibitor 4), bodies must be branch-free (12) and
// call-free (10), strides must be unit (7), element widths consistent
// (9), and cross-stream independence must be provable or asserted via
// the NoAlias option — the moral equivalent of C99 restrict (2, 6).
// Everything the DSA wins on — dynamic ranges, sentinels, conditional
// code, partial vectorization — is exactly what these checks reject.
package vectorize

import (
	"fmt"

	"repro/internal/armlite"
)

// Inhibitor labels follow dissertation Table 1.
const (
	InhibitNone          = ""
	InhibitNoPattern     = "no-vector-access-pattern"        // line 1
	InhibitDependency    = "cross-iteration-data-dependency" // line 2
	InhibitDynamicCount  = "iteration-count-not-fixed"       // line 4
	InhibitCarryAround   = "carry-around-scalar"             // line 5
	InhibitAliasing      = "pointer-aliasing"                // line 6
	InhibitIndirect      = "indirect-addressing"             // line 7
	InhibitMixedWidth    = "inconsistent-member-length"      // line 9
	InhibitFunctionCall  = "call-to-non-inline-function"     // line 10
	InhibitConditional   = "if-switch-statements"            // line 12
	InhibitUnsupportedOp = "unsupported-operation"
	InhibitRegisters     = "register-pressure"
	InhibitTooShort      = "too-few-iterations"
	InhibitControlFlow   = "irregular-control-flow"
)

// Options controls the compilation.
type Options struct {
	// NoAlias asserts that distinct base pointers never overlap (the
	// kernels were "compiled with restrict"). Without it, streams
	// with unprovable bases inhibit vectorization (Table 1 line 6).
	NoAlias bool
}

// LoopReport describes one loop the compiler considered.
type LoopReport struct {
	Start      int // original loop-start instruction index
	BranchPC   int
	Vectorized bool
	Inhibitor  string
	Lanes      int
	TripCount  int
}

// Report is the compilation summary.
type Report struct {
	Loops []LoopReport
}

// VectorizedCount returns how many loops were vectorized.
func (r *Report) VectorizedCount() int {
	n := 0
	for _, l := range r.Loops {
		if l.Vectorized {
			n++
		}
	}
	return n
}

// Inhibitors returns the census of rejection reasons.
func (r *Report) Inhibitors() map[string]int {
	m := make(map[string]int)
	for _, l := range r.Loops {
		if !l.Vectorized && l.Inhibitor != "" {
			m[l.Inhibitor]++
		}
	}
	return m
}

// AutoVectorize compiles prog, returning the rewritten program and the
// per-loop report. The input program is not modified.
func AutoVectorize(prog *armlite.Program, opts Options) (*armlite.Program, *Report, error) {
	out := prog.Clone()
	report := &Report{}
	seen := make(map[string]bool) // loop fingerprints already reported

	for pass := 0; pass < 64; pass++ {
		loops := findLoops(out)
		progressed := false
		for _, lp := range loops {
			fp := fingerprint(out, lp)
			if seen[fp] {
				continue
			}
			if containsVector(out, lp) {
				// One of our own generated vector loops: not a
				// candidate, and not worth a diagnostic.
				seen[fp] = true
				continue
			}
			an, inhibitor := analyzeLoop(out, lp, opts)
			if inhibitor != InhibitNone {
				seen[fp] = true
				report.Loops = append(report.Loops, LoopReport{
					Start: lp.start, BranchPC: lp.branch, Inhibitor: inhibitor})
				continue
			}
			newProg, err := rewriteLoop(out, an)
			if err != nil {
				seen[fp] = true
				report.Loops = append(report.Loops, LoopReport{
					Start: lp.start, BranchPC: lp.branch, Inhibitor: InhibitRegisters})
				continue
			}
			seen[fp] = true
			report.Loops = append(report.Loops, LoopReport{
				Start: lp.start, BranchPC: lp.branch, Vectorized: true,
				Lanes: an.lanes, TripCount: an.trip})
			out = newProg
			progressed = true
			break // indices changed; rescan
		}
		if !progressed {
			break
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("vectorize: produced invalid program: %w", err)
	}
	return out, report, nil
}

type loopRange struct {
	start, branch int
}

// findLoops locates backward conditional branches, innermost first.
func findLoops(p *armlite.Program) []loopRange {
	var loops []loopRange
	for pc, in := range p.Code {
		if in.Op == armlite.OpB && in.Target >= 0 && in.Target < pc {
			loops = append(loops, loopRange{start: in.Target, branch: pc})
		}
	}
	// Innermost first: smaller bodies first.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].branch-loops[j].start < loops[i].branch-loops[i].start {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	return loops
}

// fingerprint identifies a loop by its body text so rewritten
// remainders are not reprocessed endlessly across passes. Branch
// targets are rebased to the loop start so the fingerprint survives
// instruction-index shifts caused by earlier rewrites.
func fingerprint(p *armlite.Program, lp loopRange) string {
	s := ""
	for pc := lp.start; pc <= lp.branch && pc < len(p.Code); pc++ {
		in := p.Code[pc]
		if in.Op == armlite.OpB || in.Op == armlite.OpBL {
			in.Target -= lp.start
			in.Label = ""
		}
		s += in.String() + ";"
	}
	return s
}

// containsVector reports whether the loop body already holds NEON
// instructions (i.e. it is one of our generated vector loops).
func containsVector(p *armlite.Program, lp loopRange) bool {
	for pc := lp.start; pc <= lp.branch && pc < len(p.Code); pc++ {
		if p.Code[pc].Op.IsVector() {
			return true
		}
	}
	return false
}
