// Quickstart: assemble the dissertation's Fig. 25 vector-sum loop, run
// it once on the plain ARM model and once with the DSA attached, and
// show what the DSA detected, generated and saved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
)

// The Fig. 25 shape: v[i] = a[i] + b[i] over 400 elements.
const src = `
        mov   r5, #0x1000     ; &a
        mov   r10, #0x2000    ; &b
        mov   r2, #0x3000     ; &v
        mov   r0, #0          ; i
        mov   r4, #400        ; n
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`

func seed(m *cpu.Machine) {
	a := make([]int32, 400)
	b := make([]int32, 400)
	for i := range a {
		a[i] = int32(i)
		b[i] = int32(1000 - i)
	}
	if err := m.Mem.WriteWords(0x1000, a); err != nil {
		log.Fatal(err)
	}
	if err := m.Mem.WriteWords(0x2000, b); err != nil {
		log.Fatal(err)
	}
}

func main() {
	prog, err := asm.Assemble("vector_sum", src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. ARM original execution.
	scalar := cpu.MustNew(prog, cpu.DefaultConfig())
	seed(scalar)
	if err := scalar.Run(nil); err != nil {
		log.Fatal(err)
	}

	// 2. Same binary with the Dynamic SIMD Assembler attached.
	sys, err := dsa.NewSystem(prog, cpu.DefaultConfig(), dsa.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	seed(sys.M)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	// Same answer, fewer ticks — no recompilation, no libraries.
	v1, _ := scalar.Mem.ReadWords(0x3000, 400)
	v2, _ := sys.M.Mem.ReadWords(0x3000, 400)
	for i := range v1 {
		if v1[i] != v2[i] {
			log.Fatalf("mismatch at %d: %d vs %d", i, v1[i], v2[i])
		}
	}

	fmt.Println("vector_sum: v[i] = a[i] + b[i], 400 iterations")
	fmt.Printf("  ARM original execution: %8d ticks\n", scalar.Ticks)
	fmt.Printf("  ARM + DSA:              %8d ticks  (%.2fx)\n",
		sys.M.Ticks, float64(scalar.Ticks)/float64(sys.M.Ticks))
	fmt.Println("  outputs verified identical")

	st := sys.Stats()
	fmt.Printf("\nDSA activity: %d takeover(s), %d iterations executed as SIMD\n",
		st.Takeovers, st.VectorizedIters)

	entry, ok := sys.E.Cache.Lookup(prog.Labels["loop"])
	if !ok {
		log.Fatal("loop not found in the DSA cache")
	}
	fmt.Printf("\nDSA cache entry for loop @%d (%s, %d lanes of %v):\n",
		entry.LoopID, entry.Kind, entry.Analysis.Lanes(), entry.Analysis.ElemDT)
	fmt.Println("generated SIMD statements (one chunk — compare dissertation Fig. 25):")
	for _, in := range entry.Analysis.Plan().Listing {
		fmt.Printf("    %s\n", in)
	}
}
