; The dissertation's Fig. 25 vector-sum loop: v[i] = a[i] + b[i].
; Try:  go run ./cmd/dsasm -vectorize examples/kernels/vector_sum.s
        mov   r5, #0x1000     ; &a
        mov   r10, #0x2000    ; &b
        mov   r2, #0x3000     ; &v
        mov   r0, #0          ; i
        mov   r4, #400        ; n
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
