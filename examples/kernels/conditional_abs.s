; A conditional loop (dissertation Fig. 11c): out[i] = |a[i] - b[i]|.
; Statically inhibited by the if/else; the extended DSA evaluates the
; guard as a SIMD mask and retires both arms masked.
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #256
loop:   ldr   r3, [r5, r0, lsl #2]
        ldr   r1, [r10, r0, lsl #2]
        cmp   r3, r1
        ble   elseL
        sub   r6, r3, r1
        str   r6, [r2, r0, lsl #2]
        b     endif
elseL:  sub   r6, r1, r3
        str   r6, [r2, r0, lsl #2]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
