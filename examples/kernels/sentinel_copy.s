; A sentinel loop (dissertation Fig. 11 / §4.6.5): copy a
; zero-terminated string while shifting each byte. The static
; compiler refuses it (iteration count not fixed); the extended DSA
; vectorizes it speculatively.
; Try:  go run ./cmd/dsasm -vectorize -noalias examples/kernels/sentinel_copy.s
        mov   r5, #0x1000
        mov   r2, #0x2000
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        add   r4, r3, #3
        strb  r4, [r2], #1
        b     loop
done:   halt
