// Dynamicloops demonstrates what only the run-time approach can do:
// the three loop families of dissertation Fig. 11 that defeat static
// vectorization — a conditional loop, a sentinel loop and a
// dynamic-range loop — run under the static compiler, the original
// DSA and the extended DSA.
//
//	go run ./examples/dynamicloops
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/vectorize"
)

type demo struct {
	name  string
	src   string
	setup func(*cpu.Machine)
}

var demos = []demo{
	{
		name: "conditional loop (Fig. 11c): out[i] = |a[i]-b[i]|",
		src: `
        mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
        mov   r4, #256
loop:   ldr   r3, [r5, r0, lsl #2]
        ldr   r1, [r10, r0, lsl #2]
        cmp   r3, r1
        ble   elseL
        sub   r6, r3, r1
        str   r6, [r2, r0, lsl #2]
        b     endif
elseL:  sub   r6, r1, r3
        str   r6, [r2, r0, lsl #2]
endif:  add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt`,
		setup: func(m *cpu.Machine) {
			a := make([]int32, 256)
			b := make([]int32, 256)
			for i := range a {
				a[i] = int32((i * 7) % 100)
				b[i] = int32((i * 13) % 90)
			}
			m.Mem.WriteWords(0x1000, a)
			m.Mem.WriteWords(0x2000, b)
		},
	},
	{
		name: "sentinel loop (Fig. 11, §4.6.5): copy until the terminator",
		src: `
        mov   r5, #0x1000
        mov   r2, #0x3000
loop:   ldrb  r3, [r5], #1
        cmp   r3, #0
        beq   done
        add   r4, r3, #1
        strb  r4, [r2], #1
        b     loop
done:   halt`,
		setup: func(m *cpu.Machine) {
			buf := make([]byte, 201)
			for i := 0; i < 200; i++ {
				buf[i] = byte(1 + i%120)
			}
			m.Mem.WriteBytes(0x1000, buf)
		},
	},
	{
		name: "dynamic-range loop (Fig. 11b): n arrives at run time",
		src: `
        mov   r9, #0x8000     ; parameter block
        ldr   r4, [r9]        ; n — unknown to the compiler
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        add   r3, r3, #7
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt`,
		setup: func(m *cpu.Machine) {
			m.Mem.WriteWords(0x8000, []int32{300})
			vals := make([]int32, 320)
			for i := range vals {
				vals[i] = int32(i * 3)
			}
			m.Mem.WriteWords(0x1000, vals)
		},
	},
}

func main() {
	for _, d := range demos {
		prog, err := asm.Assemble("demo", d.src)
		if err != nil {
			log.Fatal(err)
		}

		scalar := cpu.MustNew(prog, cpu.DefaultConfig())
		d.setup(scalar)
		if err := scalar.Run(nil); err != nil {
			log.Fatal(err)
		}

		_, rep, err := vectorize.AutoVectorize(prog, vectorize.Options{NoAlias: true})
		if err != nil {
			log.Fatal(err)
		}
		inhibitor := "—"
		for _, l := range rep.Loops {
			if !l.Vectorized {
				inhibitor = l.Inhibitor
			}
		}

		run := func(cfg dsa.Config) *dsa.System {
			s, err := dsa.NewSystem(prog, cpu.DefaultConfig(), cfg)
			if err != nil {
				log.Fatal(err)
			}
			d.setup(s.M)
			if err := s.Run(); err != nil {
				log.Fatal(err)
			}
			return s
		}
		orig := run(dsa.OriginalConfig())
		ext := run(dsa.DefaultConfig())

		fmt.Println(d.name)
		fmt.Printf("  static compiler:  cannot vectorize (%s)\n", inhibitor)
		fmt.Printf("  original DSA:     %8d ticks (%.2fx), %d SIMD iterations\n",
			orig.M.Ticks, float64(scalar.Ticks)/float64(orig.M.Ticks), orig.Stats().VectorizedIters)
		fmt.Printf("  extended DSA:     %8d ticks (%.2fx), %d SIMD iterations\n",
			ext.M.Ticks, float64(scalar.Ticks)/float64(ext.M.Ticks), ext.Stats().VectorizedIters)
		fmt.Println()
	}
}
