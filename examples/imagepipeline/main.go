// Imagepipeline runs the paper's multimedia motivation case — an
// RGB→grayscale conversion followed by a Gaussian blur — under all
// four system setups of the evaluation and prints the comparison the
// DATE article's intro promises: the DSA reaches hand-coded-class
// performance with zero developer effort and no recompilation.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	fmt.Println("image pipeline: RGB→gray conversion, then separable Gaussian blur")
	fmt.Println()
	fmt.Printf("%-10s %22s %22s\n", "setup", "rgb_gray", "gaussian")

	modes := []struct {
		mode  experiments.Mode
		label string
	}{
		{experiments.ModeScalar, "scalar"},
		{experiments.ModeAutoVec, "autovec"},
		{experiments.ModeHand, "hand"},
		{experiments.ModeDSAExt, "dsa"},
	}

	base := map[string]int64{}
	for _, m := range modes {
		row := fmt.Sprintf("%-10s", m.label)
		for _, name := range []string{"rgb_gray", "gaussian"} {
			w, err := workloads.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			r, err := experiments.Run(w, m.mode)
			if err != nil {
				log.Fatal(err)
			}
			if m.mode == experiments.ModeScalar {
				base[name] = r.Ticks
			}
			speedup := float64(base[name]) / float64(r.Ticks)
			row += fmt.Sprintf(" %12d (%5.2fx)", r.Ticks, speedup)
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Println("every run is bit-exact against the Go reference; the DSA result")
	fmt.Println("needs neither the NEON library (hand) nor recompilation (autovec).")
}
