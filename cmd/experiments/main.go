// Command experiments regenerates every table and figure of the
// dissertation's evaluation (Articles 1–3). Running it without flags
// prints the full set; -table selects one artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	table := flag.String("table", "all",
		"artifact to print: all, a1-fig12, a1-table3, a2-fig16, a2-table3, "+
			"a3-fig7, a3-fig8, a3-fig9, a3-table3, adaptive, inhibitors, "+
			"techniques, setup, summary, csv")
	flag.Parse()

	// Static tables need no simulation.
	switch *table {
	case "techniques":
		experiments.TechniquesTable(os.Stdout)
		return
	case "setup":
		experiments.SystemsSetupTable(os.Stdout)
		return
	case "a1-table3":
		(&experiments.Suite{}).Article1Table3(os.Stdout)
		return
	}

	fmt.Fprintln(os.Stderr, "running the full suite under all six system setups …")
	suite, err := experiments.RunSuite([]experiments.Mode{
		experiments.ModeScalar, experiments.ModeAutoVec, experiments.ModeHand,
		experiments.ModeDSAOrig, experiments.ModeDSAExt, experiments.ModeDSAAdaptive,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiment failed:", err)
		os.Exit(1)
	}

	out := os.Stdout
	show := func(name string, f func()) {
		if *table == "all" || *table == name {
			f()
			fmt.Fprintln(out)
		}
	}
	show("setup", func() { experiments.SystemsSetupTable(out) })
	show("techniques", func() { experiments.TechniquesTable(out) })
	show("a1-fig12", func() { suite.Article1Fig12(out) })
	show("a1-table3", func() { suite.Article1Table3(out) })
	show("a2-fig16", func() { suite.Article2Fig16(out) })
	show("a2-table3", func() { suite.DetectionLatency(out, experiments.ModeDSAExt) })
	show("a3-fig7", func() { suite.Article3Fig7(out) })
	show("a3-fig8", func() { suite.Article3Fig8(out) })
	show("a3-fig9", func() { suite.Article3Fig9(out) })
	show("a3-table3", func() { suite.Article3Table3(out) })
	show("adaptive", func() { suite.AdaptivePolicyTable(out) })
	show("inhibitors", func() { suite.InhibitorsTable(out) })
	show("summary", func() { suite.Summary(out) })
	show("csv", func() { suite.WriteCSV(out) })
}
