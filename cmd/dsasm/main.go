// Command dsasm assembles, disassembles and lints armlite sources, and
// optionally runs the static auto-vectorizer over them:
//
//	dsasm file.s                 # assemble + lint, print summary
//	dsasm -d file.s              # assemble then disassemble (round-trip)
//	dsasm -vectorize file.s      # print the auto-vectorized program
//	dsasm -vectorize -noalias file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/vectorize"
)

func main() {
	disasm := flag.Bool("d", false, "print the disassembled program")
	vec := flag.Bool("vectorize", false, "run the static auto-vectorizer and print the result")
	noalias := flag.Bool("noalias", false, "assume restrict semantics during vectorization")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsasm [-d] [-vectorize [-noalias]] <file.s>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := asm.Parse(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "assembly failed:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s: %d instructions, %d labels — ok\n",
		flag.Arg(0), len(prog.Code), len(prog.Labels))

	if *vec {
		out, rep, err := vectorize.AutoVectorize(prog, vectorize.Options{NoAlias: *noalias})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vectorization failed:", err)
			os.Exit(1)
		}
		for _, l := range rep.Loops {
			if l.Vectorized {
				fmt.Fprintf(os.Stderr, "loop @%d..%d: vectorized ×%d lanes (trip %d)\n",
					l.Start, l.BranchPC, l.Lanes, l.TripCount)
			} else {
				fmt.Fprintf(os.Stderr, "loop @%d..%d: not vectorized (%s)\n",
					l.Start, l.BranchPC, l.Inhibitor)
			}
		}
		fmt.Print(out.String())
		return
	}
	if *disasm {
		fmt.Print(prog.String())
	}
}
