package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the end-to-end service check: build the real
// binary, boot it on an ephemeral port, run a submit → poll → metrics
// round trip over HTTP, and shut it down with SIGTERM. It exercises
// the same path as the CI service-smoke job.
func TestDaemonSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "dsasimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data", filepath.Join(dir, "data"),
		"-progress-every", "100000")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	// The daemon logs its resolved listen address; scrape it, then keep
	// the stderr pipe drained so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	var addr string
	var logTail []string
	logDone := make(chan struct{})
	for sc.Scan() {
		line := sc.Text()
		logTail = append(logTail, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address; log:\n%s", strings.Join(logTail, "\n"))
	}
	go func() {
		defer close(logDone)
		for sc.Scan() {
			logTail = append(logTail, sc.Text())
		}
	}()
	base := "http://" + addr

	// Submit a job and poll it to completion.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"workload":"mm_32x32","config":"extended"}`)))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: code = %d", resp.StatusCode)
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Result *struct {
			Status    string `json:"status"`
			MemDigest string `json:"mem_digest"`
			Takeovers uint64 `json:"takeovers"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if view.ID == "" {
		t.Fatalf("submit returned no job id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatalf("decode job: %v", err)
		}
		r.Body.Close()
		if view.Status == "ok" || view.Status == "degraded" || view.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != "ok" || view.Result == nil || view.Result.MemDigest == "" {
		t.Fatalf("job finished badly: %+v", view)
	}
	if view.Result.Takeovers == 0 {
		t.Errorf("extended run reports no takeovers")
	}

	// Metrics round trip.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"dsasimd_jobs_submitted_total 1",
		`dsasimd_jobs_completed_total{status="ok"} 1`,
		"dsasimd_queue_depth 0",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Graceful SIGTERM shutdown.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM")
	}
	<-logDone
	if !strings.Contains(strings.Join(logTail, "\n"), "dsasimd: bye") {
		t.Errorf("daemon log missing clean-shutdown line:\n%s", strings.Join(logTail, "\n"))
	}

	// The drain persisted the job table.
	if _, err := os.Stat(filepath.Join(dir, "data", "jobs.dsnp")); err != nil {
		t.Errorf("no persisted job table: %v", err)
	}
}
