package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/server"
)

// clusterSource is the takeover workload: long enough that a worker is
// reliably mid-run when killed, with a digest that depends on the whole
// execution history — so a resumed run can only match the reference by
// actually continuing the interrupted state, not by luck.
func clusterSource(n int) string {
	return fmt.Sprintf(`
        mov   r0, #0
        mov   r1, #%d
outer:  mov   r2, #65536
        mov   r4, #0
inner:  add   r0, r0, #1
        add   r5, r5, r0
        eor   r5, r5, r1
        str   r5, [r2], #4
        add   r4, r4, #1
        cmp   r4, #1024
        blt   inner
        cmp   r0, r1
        blt   outer
        halt
`, n)
}

// referenceDigest runs the workload in-process — the single-process
// truth every cluster execution must reproduce bit for bit.
func referenceDigest(t *testing.T, source string) string {
	t.Helper()
	spec := server.JobSpec{Name: "ref", Source: source}
	job, err := spec.RunnerJob("ref")
	if err != nil {
		t.Fatal(err)
	}
	rep := runner.Run(context.Background(), []runner.Job{job}, runner.Options{Workers: 1})
	r := rep.Results[0]
	if r.Status != runner.StatusOK {
		t.Fatalf("reference run: %+v", r)
	}
	return server.ResultFromRunner(r).MemDigest
}

// sharedDataDir picks the workers' shared -data directory. With
// DSASIMD_CLUSTER_ARTIFACTS set (CI), checkpoints land under it so a
// failing run's snapshots can be uploaded for postmortem.
func sharedDataDir(t *testing.T, dir string) string {
	t.Helper()
	if env := os.Getenv("DSASIMD_CLUSTER_ARTIFACTS"); env != "" {
		d := filepath.Join(env, t.Name())
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		return d
	}
	return filepath.Join(dir, "shared")
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dsasimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// proc is one daemon child process with its stderr log captured.
type proc struct {
	cmd  *exec.Cmd
	mu   sync.Mutex
	log  []string
	addr string // resolved listen address (coordinator only)
}

func (p *proc) logText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.log, "\n")
}

func (p *proc) kill9() { _ = p.cmd.Process.Kill() }

// startProc launches the daemon, scraping "listening on" from stderr
// when waitAddr is set, and keeps the pipe drained either way.
func startProc(t *testing.T, bin string, waitAddr bool, args ...string) *proc {
	t.Helper()
	p := &proc{cmd: exec.Command(bin, args...)}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %v: %v", args, err)
	}
	t.Cleanup(func() {
		p.kill9()
		_, _ = p.cmd.Process.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.log = append(p.log, line)
			p.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	if waitAddr {
		select {
		case p.addr = <-addrCh:
		case <-time.After(30 * time.Second):
			t.Fatalf("daemon never reported its address; log:\n%s", p.logText())
		}
	}
	return p
}

func startCoordinatorProc(t *testing.T, bin, dataDir, lease string) *proc {
	t.Helper()
	return startProc(t, bin, true,
		"-coordinator", "-addr", "127.0.0.1:0", "-data", dataDir, "-lease", lease)
}

func startWorkerProc(t *testing.T, bin, join, dataDir string) *proc {
	t.Helper()
	return startProc(t, bin, false,
		"-worker", "-join", join, "-data", dataDir,
		"-snapshot-every", "50000", "-progress-every", "25000")
}

type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Owner  string `json:"owner"`
	Epoch  uint64 `json:"epoch"`
	Result *struct {
		Status          string `json:"status"`
		MemDigest       string `json:"mem_digest"`
		ResumedFromStep uint64 `json:"resumed_from_step"`
	} `json:"result"`
}

func submitJob(t *testing.T, base, source string) string {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"name": "chaos", "source": source})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: code = %d", resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func fetchJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	_, _ = b.ReadFrom(resp.Body)
	return b.String()
}

func waitClusterReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if resp, err := http.Get(base + "/readyz"); err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitAnyRunning blocks until at least one of the jobs is leased and
// running, so a kill lands mid-execution.
func waitAnyRunning(t *testing.T, base string, ids []string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, id := range ids {
			v := fetchJob(t, base, id)
			if v.Status == "running" && v.Owner != "" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no job ever started running")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitAllOK polls until every job is terminal, then asserts they all
// finished ok with the reference digest — the zero-lost-jobs check.
func waitAllOK(t *testing.T, base string, ids []string, wantDigest string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		done := 0
		for _, id := range ids {
			v := fetchJob(t, base, id)
			switch v.Status {
			case "ok", "degraded", "failed":
				done++
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			var states []string
			for _, id := range ids {
				v := fetchJob(t, base, id)
				states = append(states, fmt.Sprintf("%s=%s(owner %s)", id, v.Status, v.Owner))
			}
			t.Fatalf("jobs not terminal after %v: %s", timeout, strings.Join(states, " "))
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, id := range ids {
		v := fetchJob(t, base, id)
		if v.Status != "ok" {
			t.Errorf("job %s: status %s, want ok", id, v.Status)
			continue
		}
		if v.Result == nil || v.Result.MemDigest != wantDigest {
			t.Errorf("job %s diverged from the single-process reference: %+v", id, v.Result)
		}
	}
}

// TestClusterSmoke is the CI gate (make cluster-smoke): a coordinator
// and two worker processes, one worker SIGKILLed mid-run, and every
// job still completes ok with the single-process digest — no lost
// jobs, no divergence.
func TestClusterSmoke(t *testing.T) {
	bin := buildDaemon(t)
	dir := t.TempDir()
	source := clusterSource(3_000_000)
	want := referenceDigest(t, source)

	coord := startCoordinatorProc(t, bin, filepath.Join(dir, "coord"), "1500ms")
	base := "http://" + coord.addr
	shared := sharedDataDir(t, dir)
	startWorkerProc(t, bin, base, shared)
	victim := startWorkerProc(t, bin, base, shared)
	waitClusterReady(t, base, 30*time.Second)

	// Three jobs across two capacity-1 workers: both workers are busy
	// when the kill lands.
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitJob(t, base, source))
	}
	waitAnyRunning(t, base, ids, 30*time.Second)
	victim.kill9()
	t.Log("SIGKILLed one worker mid-run")

	waitAllOK(t, base, ids, want, 180*time.Second)

	m := fetchMetrics(t, base)
	if !strings.Contains(m, `dsasimd_cluster_jobs_completed_total{status="ok"} 3`) {
		t.Errorf("metrics: want exactly 3 ok completions (exactly-once), got:\n%s",
			grepMetric(m, "jobs_completed"))
	}

	// Graceful coordinator shutdown persists the cluster state.
	if err := coord.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, coord, 30*time.Second)
	if !strings.Contains(coord.logText(), "dsasimd: bye") {
		t.Errorf("coordinator log missing clean-shutdown line:\n%s", coord.logText())
	}
}

// TestClusterChaos is the headline robustness proof: three workers,
// repeated SIGKILLs with replacements joining, and at the end every
// job has completed exactly once, bit-identical to the single-process
// reference.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	source := clusterSource(3_000_000)
	want := referenceDigest(t, source)

	coord := startCoordinatorProc(t, bin, filepath.Join(dir, "coord"), "1200ms")
	base := "http://" + coord.addr
	shared := sharedDataDir(t, dir)
	workers := []*proc{
		startWorkerProc(t, bin, base, shared),
		startWorkerProc(t, bin, base, shared),
		startWorkerProc(t, bin, base, shared),
	}
	waitClusterReady(t, base, 30*time.Second)

	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, submitJob(t, base, source))
	}
	waitAnyRunning(t, base, ids, 30*time.Second)

	// The chaos loop: kill a worker mid-run, start a replacement, let
	// takeover happen, repeat. Round-robin over the fleet so every
	// original worker dies at least once.
	for round := 0; round < 3; round++ {
		victim := workers[round%len(workers)]
		victim.kill9()
		workers[round%len(workers)] = startWorkerProc(t, bin, base, shared)
		t.Logf("chaos round %d: SIGKILLed a worker, started a replacement", round)
		time.Sleep(1500 * time.Millisecond)
	}

	waitAllOK(t, base, ids, want, 300*time.Second)

	m := fetchMetrics(t, base)
	if !strings.Contains(m, `dsasimd_cluster_jobs_completed_total{status="ok"} 5`) {
		t.Errorf("metrics: want exactly 5 ok completions (exactly-once), got:\n%s",
			grepMetric(m, "jobs_completed"))
	}
	for _, counter := range []string{
		"dsasimd_cluster_leases_expired_total",
		"dsasimd_cluster_takeovers_total",
	} {
		if n := parseMetric(t, m, counter); n < 1 {
			t.Errorf("%s = %d, want >= 1 (the kills must have been detected)", counter, n)
		}
	}
}

func grepMetric(m, needle string) string {
	var out []string
	for _, l := range strings.Split(m, "\n") {
		if strings.Contains(l, needle) && !strings.HasPrefix(l, "#") {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return "(absent)"
	}
	return strings.Join(out, "\n")
}

func parseMetric(t *testing.T, m, name string) int64 {
	t.Helper()
	for _, l := range strings.Split(m, "\n") {
		var v int64
		if _, err := fmt.Sscanf(l, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s absent", name)
	return 0
}

func waitExit(t *testing.T, p *proc, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exit: %v\n%s", err, p.logText())
		}
	case <-time.After(timeout):
		t.Fatalf("process did not exit; log:\n%s", p.logText())
	}
}
