package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/netchaos"
	"repro/internal/runner"
)

// runCoordinator serves the cluster control plane: the public job API
// plus the worker lease protocol. It runs no jobs itself — workers
// join over HTTP with `dsasimd -worker -join <url>`.
//
// With -peers (or -standby) the coordinator is one node of a
// replicated set: the nodes share the -data directory (the same shared
// filesystem the workers already exchange checkpoints through),
// arbitrate leadership on <data>/ha, and replicate the leader's state
// to the standbys, which take over dispatch when the leader dies or is
// partitioned past the lease TTL.
func runCoordinator(logger *log.Logger, addr, dataDir string, lease, retryAfter time.Duration, maxJobs int, peers string, standby bool) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		logger.Fatalf("dsasimd: %v", err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Fatalf("dsasimd: %v", err)
	}
	// Same load-bearing line as the standalone daemon: tests and
	// scripts using -addr :0 scrape the resolved port from it.
	logger.Printf("dsasimd: listening on %s", ln.Addr())

	var handler http.Handler
	var shutdown func()
	if peers == "" && !standby {
		c, err := cluster.NewCoordinator(cluster.Config{
			LeaseTTL:   lease,
			MaxJobs:    maxJobs,
			RetryAfter: retryAfter,
			StateFile:  filepath.Join(dataDir, "cluster.dsnp"),
			Logf:       logger.Printf,
		})
		if err != nil {
			logger.Fatalf("dsasimd: %v", err)
		}
		// Close persists the job and lease tables; a restarted
		// coordinator picks both up, so worker leases (and their
		// fencing epochs) survive a control-plane bounce.
		handler, shutdown = c.Handler(), c.Close
	} else {
		tcp, ok := ln.Addr().(*net.TCPAddr)
		if !ok {
			logger.Fatalf("dsasimd: HA mode needs a TCP listener, got %s", ln.Addr())
		}
		// Each node keeps its state under a per-port file in the shared
		// directory; claims live beside them under <data>/ha.
		self := "http://" + net.JoinHostPort(reachableHost(tcp.IP), fmt.Sprintf("%d", tcp.Port))
		var peerList []string
		for _, p := range strings.Split(peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		node, err := cluster.NewNode(cluster.Config{
			LeaseTTL:   lease,
			MaxJobs:    maxJobs,
			RetryAfter: retryAfter,
			StateFile:  filepath.Join(dataDir, fmt.Sprintf("cluster-%d.dsnp", tcp.Port)),
			Logf:       logger.Printf,
		}, cluster.HAConfig{
			Self:     self,
			Peers:    peerList,
			ClaimDir: filepath.Join(dataDir, "ha"),
			Standby:  standby,
		})
		if err != nil {
			logger.Fatalf("dsasimd: %v", err)
		}
		logger.Printf("dsasimd: HA node %s (role %s, %d peer(s))", self, node.Role(), len(peerList))
		handler, shutdown = node.Handler(), node.Close
	}

	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logger.Printf("dsasimd: %s — shutting down", got)
	case err := <-errCh:
		logger.Fatalf("dsasimd: serve: %v", err)
	}

	shutdown()
	_ = hs.Close()
	logger.Printf("dsasimd: bye")
}

// reachableHost turns the listener's IP into something peers and
// workers can dial: an unspecified bind (":8077") advertises the
// loopback address — HA deployments should bind an explicit host.
func reachableHost(ip net.IP) string {
	if ip == nil || ip.IsUnspecified() {
		return "127.0.0.1"
	}
	return ip.String()
}

// runWorker executes leased jobs for a coordinator. Workers have no
// listener of their own: desired state arrives via their heartbeats.
// On SIGTERM the worker self-fences — running jobs checkpoint and
// unwind, and their next owners resume from those checkpoints.
//
// A non-empty chaos spec wraps every coordinator RPC in a seeded
// netchaos fault injector — the deterministic adversary the partition
// chaos suite runs workers under. Same seed, same fault schedule.
func runWorker(logger *log.Logger, join, dataDir string, capacity int, ropts runner.Options, chaos string, chaosSeed int64) {
	if join == "" {
		logger.Fatalf("dsasimd: -worker requires -join <coordinator-url>")
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "snapshots"), 0o755); err != nil {
		logger.Fatalf("dsasimd: %v", err)
	}
	var transport http.RoundTripper
	var injector *netchaos.Injector
	if chaos != "" {
		rates, err := netchaos.ParseRates(chaos)
		if err != nil {
			logger.Fatalf("dsasimd: -chaos: %v", err)
		}
		injector = netchaos.NewInjector(chaosSeed, rates, nil, logger.Printf)
		transport = injector
		logger.Printf("dsasimd-worker: chaos enabled: %s (replay with -chaos %q -chaos-seed %d)", chaos, rates.String(), chaosSeed)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: join,
		Capacity:    capacity,
		SnapshotDir: filepath.Join(dataDir, "snapshots"),
		Runner:      ropts,
		Transport:   transport,
		Logf:        logger.Printf,
	})
	done := make(chan struct{})
	go func() { w.Run(); close(done) }()
	logger.Printf("dsasimd-worker: serving %s (capacity %d)", join, capacity)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logger.Printf("dsasimd-worker: %s — fencing", got)
		w.Close()
		<-done
	case <-done:
	}
	if injector != nil {
		logger.Printf("dsasimd-worker: chaos injected: %s", injector.CountsLine())
	}
	logger.Printf("dsasimd-worker: bye")
}
