package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netchaos"
)

// Partition-chaos knobs. The lease TTL is short enough that a scripted
// partition reliably expires it, and every duration below is phrased
// in TTLs so the schedule scales if the TTL ever changes.
const (
	chaosLeaseTTL = 1500 * time.Millisecond
	chaosJobs     = 5
	// workerChaosSpec is the fault mix each worker's coordinator RPCs
	// run under — every class enabled, rates low enough that the
	// protocol keeps making progress between faults.
	workerChaosSpec = "drop=0.02,timeout=0.02,delay=0.06,duplicate=0.04,reset=0.03,truncate=0.03,errcode=0.03,maxdelay=120ms"
	// clientChaosSpec is the submission/polling path's mix. No timeout
	// class: a stall costs a full client deadline per draw and buys no
	// coverage the worker side doesn't already have.
	clientChaosSpec = "delay=0.10,duplicate=0.08,reset=0.06,truncate=0.06,errcode=0.05,maxdelay=80ms"
)

// chaosBaseSeed reads DSASIMD_CHAOS_SEED, the replay knob: a failing
// run logs the exact value to rerun its fault schedule bit for bit.
func chaosBaseSeed(t *testing.T) int64 {
	env := os.Getenv("DSASIMD_CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("DSASIMD_CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// startChaosWorkerProc launches a worker whose coordinator RPCs pass
// through its own seeded fault injector (-chaos) — on top of whatever
// TCP-level damage the test's proxy is doing.
func startChaosWorkerProc(t *testing.T, bin, join, dataDir string, seed int64) *proc {
	t.Helper()
	return startProc(t, bin, false,
		"-worker", "-join", join, "-data", dataDir,
		"-snapshot-every", "50000", "-progress-every", "25000",
		"-chaos", workerChaosSpec, "-chaos-seed", strconv.FormatInt(seed, 10))
}

// TestClusterPartitionChaos is the network-fault robustness proof: a
// coordinator and three workers, each worker's link running through a
// commanded TCP proxy, driven through full partitions, both asymmetric
// partition directions, slow-drip bandwidth, and connection resets —
// while every HTTP exchange (worker RPCs and the test's own
// submissions) additionally suffers seeded drop/delay/duplicate/
// reset/truncate/errcode faults. At the end: zero lost jobs, every
// completion exactly once, every digest bit-identical to the
// single-process reference. The whole schedule derives from one seed;
// a failure logs the replay line.
func TestClusterPartitionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("partition chaos skipped in -short")
	}
	bin := buildDaemon(t)
	base := chaosBaseSeed(t)
	for _, seed := range []int64{base, base + 101, base + 202} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runPartitionChaos(t, bin, seed)
		})
	}
}

func runPartitionChaos(t *testing.T, bin string, seed int64) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay this exact fault schedule with: DSASIMD_CHAOS_SEED=%d make partition-chaos", seed)
		}
	})
	dir := t.TempDir()
	source := clusterSource(2_000_000)
	want := referenceDigest(t, source)

	coord := startCoordinatorProc(t, bin, filepath.Join(dir, "coord"), chaosLeaseTTL.String())
	base := "http://" + coord.addr
	shared := sharedDataDir(t, dir)
	if err := os.MkdirAll(shared, 0o755); err != nil {
		t.Fatal(err)
	}

	// Proxy commands are logged to a file under the shared dir, so a
	// CI failure's artifact upload carries the fault timeline next to
	// the checkpoints it produced.
	logFile, err := os.Create(filepath.Join(shared, "netchaos-proxy.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = logFile.Close() })
	var logMu sync.Mutex
	plogf := func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(logFile, format+"\n", args...)
		logMu.Unlock()
		t.Logf(format, args...)
	}

	// Three workers, each behind its own commanded proxy.
	proxies := make([]*netchaos.Proxy, 3)
	for i := range proxies {
		p, err := netchaos.NewProxy(coord.addr, plogf)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		proxies[i] = p
		startChaosWorkerProc(t, bin, "http://"+p.Addr(), shared, seed+int64(i))
	}
	waitClusterReady(t, base, 30*time.Second)

	// The test's own client suffers injected faults too — this is what
	// makes Idempotency-Key retries load-bearing rather than decorative.
	rates, err := netchaos.ParseRates(clientChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	injector := netchaos.NewInjector(seed+1000, rates, nil, plogf)
	chaotic := &http.Client{Transport: injector, Timeout: 5 * time.Second}

	// Submit every job through the chaotic client under an
	// Idempotency-Key, retrying blindly on any failure: drops, resets
	// and substituted 502s make individual attempts ambiguous, and the
	// key is what keeps the retries from minting twin jobs.
	ids := make([]string, 0, chaosJobs)
	for i := 0; i < chaosJobs; i++ {
		key := fmt.Sprintf("chaos-%d-%d", seed, i)
		id := ""
		for attempt := 0; attempt < 20 && id == ""; attempt++ {
			id = trySubmitIdem(chaotic, base, source, key)
			if id == "" {
				time.Sleep(100 * time.Millisecond)
			}
		}
		if id == "" {
			t.Fatalf("job %d: no submission attempt ever confirmed", i)
		}
		ids = append(ids, id)
	}
	waitAnyRunning(t, base, ids, 30*time.Second)

	rng := rand.New(rand.NewSource(seed))
	victim := func() *netchaos.Proxy { return proxies[rng.Intn(len(proxies))] }

	// Scripted phases: each required topology fault happens at least
	// once per run, by construction rather than by probability.
	//
	// Full partition, held past the lease TTL: the isolated worker's
	// heartbeats time out (their context deadline is the heartbeat
	// interval), the coordinator expires the lease, survivors take the
	// jobs over, and the worker self-fences and rejoins after the heal.
	p := victim()
	p.Partition(netchaos.PartitionBoth)
	time.Sleep(chaosLeaseTTL*2 + chaosLeaseTTL/2)
	p.Heal()
	chaoticPoll(chaotic, base, ids, 20)

	// Asymmetric, responses vanish: requests are delivered and
	// processed, so a completion can land while its 200 is lost — the
	// ambiguity the worker's bounded retries plus 409-is-final resolve.
	p = victim()
	p.Partition(netchaos.PartitionFromTarget)
	time.Sleep(chaosLeaseTTL)
	p.Heal()
	chaoticPoll(chaotic, base, ids, 20)

	// Asymmetric, requests vanish: the worker hears nothing back and
	// must not trust its half-open link.
	p = victim()
	p.Partition(netchaos.PartitionToTarget)
	time.Sleep(chaosLeaseTTL)
	p.Heal()
	chaoticPoll(chaotic, base, ids, 20)

	// Slow-drip on one link, hard resets on another.
	p = victim()
	p.SlowDrip(2048)
	time.Sleep(chaosLeaseTTL)
	p.Heal()
	victim().Reset()
	chaoticPoll(chaotic, base, ids, 20)

	// Seed-driven rounds on top of the scripted ones.
	for round := 0; round < 4; round++ {
		p := victim()
		switch rng.Intn(4) {
		case 0:
			p.Partition(netchaos.PartitionBoth)
		case 1:
			p.Partition(netchaos.PartitionFromTarget)
		case 2:
			p.Partition(netchaos.PartitionToTarget)
		case 3:
			p.SlowDrip(4096)
		}
		time.Sleep(time.Duration(rng.Intn(int(chaosLeaseTTL))) + chaosLeaseTTL/2)
		p.Heal()
		if rng.Intn(2) == 0 {
			victim().Reset()
		}
		chaoticPoll(chaotic, base, ids, 15)
	}

	// Pump the chaotic client until its injector has demonstrably hit
	// every class the submission path must survive.
	for i := 0; i < 600; i++ {
		counts := injector.Counts()
		if counts[netchaos.FaultDelay] > 0 && counts[netchaos.FaultDuplicate] > 0 &&
			counts[netchaos.FaultReset] > 0 && counts[netchaos.FaultTruncate] > 0 {
			break
		}
		chaoticPoll(chaotic, base, ids, 5)
	}
	for _, class := range []string{netchaos.FaultDelay, netchaos.FaultDuplicate, netchaos.FaultReset, netchaos.FaultTruncate} {
		if injector.Counts()[class] == 0 {
			t.Errorf("client injector never drew %s (counts: %s)", class, injector.CountsLine())
		}
	}

	// Heal everything and let the cluster converge: zero lost jobs,
	// every digest bit-identical to the single-process reference.
	for _, p := range proxies {
		p.Heal()
	}
	waitAllOK(t, base, ids, want, 300*time.Second)

	// Exactly-once admission: despite duplicated and retried
	// submissions, the job table holds exactly the jobs we meant to
	// create — and a deliberate resubmission replays rather than forks.
	if n := countJobs(t, base); n != chaosJobs {
		t.Errorf("job table holds %d jobs, want %d (duplicate submissions must dedup)", n, chaosJobs)
	}
	id, replayed := resubmitIdem(t, base, source, fmt.Sprintf("chaos-%d-0", seed))
	if id != ids[0] || !replayed {
		t.Errorf("resubmission of job 0's key: id %s replayed %v, want %s true", id, replayed, ids[0])
	}

	// A forged heartbeat bounces off the session fence.
	resp, err := http.Post(base+"/cluster/v1/heartbeat", "application/json",
		strings.NewReader(`{"worker":"w9999","session":"forged","seq":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("forged heartbeat: code %d, want 409", resp.StatusCode)
	}

	m := fetchMetrics(t, base)
	if !strings.Contains(m, fmt.Sprintf(`dsasimd_cluster_jobs_completed_total{status="ok"} %d`, chaosJobs)) {
		t.Errorf("metrics: want exactly %d ok completions (exactly-once), got:\n%s",
			chaosJobs, grepMetric(m, "jobs_completed"))
	}
	for _, counter := range []string{
		"dsasimd_cluster_leases_expired_total", // the full partition was detected
		"dsasimd_cluster_rpc_retries_total",    // workers retried through the faults
		"dsasimd_cluster_rpc_timeouts_total",   // blackholed RPCs hit their deadlines
		"dsasimd_cluster_heartbeats_rejected_total",
		"dsasimd_cluster_jobs_deduped_total",
	} {
		if n := parseMetric(t, m, counter); n < 1 {
			t.Errorf("%s = %d, want >= 1", counter, n)
		}
	}
	plogf("netchaos: client injector counts: %s", injector.CountsLine())
}

// trySubmitIdem makes one submission attempt under the key; "" means
// the attempt failed ambiguously and the caller should retry.
func trySubmitIdem(client *http.Client, base, source, key string) string {
	body, _ := json.Marshal(map[string]string{"name": "chaos", "source": source})
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return ""
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := client.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return ""
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return ""
	}
	return v.ID
}

// resubmitIdem replays a key over the clean client and reports the
// returned job ID and whether the response was marked as a replay.
func resubmitIdem(t *testing.T, base, source, key string) (string, bool) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"name": "chaos", "source": source})
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: code %d", resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID, resp.Header.Get("Idempotency-Replayed") == "true"
}

// chaoticPoll issues n job reads through the fault-injected client,
// ignoring outcomes: its job is to keep client-side traffic (and
// injector draws) flowing during and between fault phases.
func chaoticPoll(client *http.Client, base string, ids []string, n int) {
	for i := 0; i < n; i++ {
		resp, err := client.Get(base + "/v1/jobs/" + ids[i%len(ids)])
		if err == nil {
			var v jobView
			_ = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// countJobs reads the job table's size over the clean client.
func countJobs(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	return len(list.Jobs)
}
