// Command dsasimd is the networked simulation service: it accepts
// simulation jobs over HTTP/JSON (built-in workloads or raw armlite
// assembly × a DSA configuration), admits them through a bounded
// queue with explicit backpressure, executes them on the simulation
// supervisor's worker pool, and reports job lifecycle via polling,
// server-sent events, and Prometheus metrics.
//
//	dsasimd -addr :8077 -data dsasimd-data
//
//	curl -s localhost:8077/v1/jobs -d '{"workload":"mm_32x32","config":"extended"}'
//	curl -s localhost:8077/v1/jobs/j000001
//	curl -N  localhost:8077/v1/jobs/j000001/events
//	curl -s  localhost:8077/metrics
//
// On SIGTERM/SIGINT the daemon drains gracefully: running jobs write a
// final checkpoint and unwind, the job table is persisted, and a
// restarted daemon resumes the interrupted jobs bit-identically.
//
// The same binary also runs as a cluster. A coordinator serves the
// identical job API but executes nothing itself, leasing jobs to
// worker processes with time-bounded, epoch-fenced ownership:
//
//	dsasimd -coordinator -addr :8077 -data coord-data
//	dsasimd -worker -join http://localhost:8077 -data shared-data
//
// Workers that stop heartbeating lose their lease; their jobs are
// reassigned at a higher epoch and the next owner resumes from the
// dead worker's last checkpoint in the shared -data directory. Writes
// under a stale epoch are fenced with 409, so a completed job's
// result is recorded exactly once.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address (host:port; port 0 picks a free port)")
	dataDir := flag.String("data", "dsasimd-data", "state directory: job table + per-job checkpoints")
	queueDepth := flag.Int("queue", server.DefaultQueueDepth, "admission queue capacity (full queue answers 429)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-attempt deadline (0 = none)")
	retries := flag.Int("retries", 1, "extra attempts after a fault-classified failure")
	memBudget := flag.Int64("mem-budget", 0, "cap on in-flight job memory in MiB (0 = default, -1 = unlimited)")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "steps between periodic job checkpoints (0 = runner default)")
	progressEvery := flag.Uint64("progress-every", 0, "steps between live progress samples (0 = runner default)")
	retryAfter := flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint on 429 responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for running jobs to checkpoint on shutdown")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator (no local execution; workers join via /cluster/v1)")
	worker := flag.Bool("worker", false, "run as cluster worker (requires -join; no HTTP listener)")
	join := flag.String("join", "", "coordinator base URL a -worker joins (e.g. http://host:8077)")
	lease := flag.Duration("lease", cluster.DefaultLeaseTTL, "coordinator: worker lease TTL (missed heartbeats past this trigger takeover)")
	peers := flag.String("peers", "", "coordinator: comma-separated base URLs of the other coordinators (enables replicated HA mode)")
	standby := flag.Bool("standby", false, "coordinator: start as a warm standby, promoting on leader failure (HA mode)")
	capacity := flag.Int("capacity", 1, "worker: jobs to run concurrently")
	maxJobs := flag.Int("max-jobs", cluster.DefaultMaxJobs, "coordinator: open-job admission limit (full table answers 429)")
	chaos := flag.String("chaos", "", `worker: inject faults into coordinator RPCs, e.g. "drop=0.05,delay=0.1,maxdelay=200ms" (classes: drop timeout delay duplicate reset truncate errcode)`)
	chaosSeed := flag.Int64("chaos-seed", 1, "worker: RNG seed for -chaos fault schedule (same seed = same schedule)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *coordinator && *worker {
		logger.Fatalf("dsasimd: -coordinator and -worker are mutually exclusive")
	}

	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		logger.Fatalf("dsasimd: %v", err)
	}
	ropts := runner.Options{
		Timeout:       *jobTimeout,
		Retries:       *retries,
		Backoff:       100 * time.Millisecond,
		SnapshotEvery: *snapshotEvery,
		ProgressEvery: *progressEvery,
	}
	if *memBudget > 0 {
		ropts.MemBudgetBytes = *memBudget << 20
	} else if *memBudget < 0 {
		ropts.MemBudgetBytes = -1
	}

	switch {
	case *coordinator:
		runCoordinator(logger, *addr, *dataDir, *lease, *retryAfter, *maxJobs, *peers, *standby)
		return
	case *worker:
		runWorker(logger, *join, *dataDir, *capacity, ropts, *chaos, *chaosSeed)
		return
	case *standby:
		logger.Fatalf("dsasimd: -standby requires -coordinator")
	}

	srv, err := server.New(server.Config{
		QueueDepth:  *queueDepth,
		Workers:     *workers,
		SnapshotDir: filepath.Join(*dataDir, "snapshots"),
		StateFile:   filepath.Join(*dataDir, "jobs.dsnp"),
		Runner:      ropts,
		RetryAfter:  *retryAfter,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Fatalf("dsasimd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("dsasimd: %v", err)
	}
	// The resolved address line is load-bearing: the smoke test (and
	// scripts using -addr :0) scrape it to find the port.
	logger.Printf("dsasimd: listening on %s", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logger.Printf("dsasimd: %s — draining", got)
	case err := <-errCh:
		logger.Fatalf("dsasimd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first: the pool's draining flag already turns new
	// submissions into 503s, running jobs checkpoint and unwind, and
	// the job table is persisted. Only then tear the listener down —
	// interrupted jobs never emit a terminal SSE event, so a graceful
	// http.Shutdown would hang on their open streams.
	if err := srv.Drain(ctx); err != nil {
		logger.Printf("dsasimd: drain: %v", err)
		_ = hs.Close()
		os.Exit(1)
	}
	_ = hs.Close()
	logger.Printf("dsasimd: bye")
}
