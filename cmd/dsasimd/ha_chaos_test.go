package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netchaos"
)

// Coordinator-failover chaos knobs. The lease TTL doubles as the
// failure-detection unit: a standby promotes after roughly one-to-two
// TTLs of replication silence, so every hold below is phrased in TTLs.
const (
	haChaosLeaseTTL = 1500 * time.Millisecond
	haChaosJobs     = 6
	haCoordinators  = 3
	// haClientChaosSpec puts the test's own submissions and polls under
	// seeded ambiguity — what makes the Idempotency-Key retries across
	// failovers load-bearing rather than decorative.
	haClientChaosSpec = "delay=0.08,duplicate=0.06,reset=0.05,truncate=0.05,errcode=0.04,maxdelay=80ms"
)

// reserveAddr picks a free loopback address for a coordinator and
// keeps it bound until the returned release is called. The HA
// topology needs every node's URL before any node starts (peer lists
// and the replication-link proxies are built from them) — and the
// netchaos proxies bind ephemeral ports too, so a reservation freed
// before the mesh exists can be snatched by a proxy. Each reservation
// is released immediately before its coordinator process boots.
func reserveAddr(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	release := func() { once.Do(func() { ln.Close() }) }
	t.Cleanup(release)
	return ln.Addr().String(), release
}

// waitBindable blocks until addr can be bound again — a SIGKILLed
// coordinator's port being re-listened by its -standby replacement.
func waitBindable(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if ln, err := net.Listen("tcp", addr); err == nil {
			ln.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("port %s never became bindable again", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func startHACoordinatorProc(t *testing.T, bin, addr, dataDir, peers string, standby bool) *proc {
	t.Helper()
	args := []string{
		"-coordinator", "-addr", addr, "-data", dataDir,
		"-lease", haChaosLeaseTTL.String(), "-peers", peers,
	}
	if standby {
		args = append(args, "-standby")
	}
	return startProc(t, bin, true, args...)
}

// roleOf probes one node's role header; "" when the node is down.
func roleOf(base string) string {
	hc := &http.Client{Timeout: time.Second}
	resp, err := hc.Get(base + "/readyz")
	if err != nil {
		return ""
	}
	resp.Body.Close()
	return resp.Header.Get("X-Dsasimd-Role")
}

// waitLeaderAmong polls until exactly the expected kind of leader
// exists: some node other than `not` answers as leader. Returns its
// base URL.
func waitLeaderAmong(t *testing.T, bases []string, not string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, b := range bases {
			if b != not && roleOf(b) == "leader" {
				return b
			}
		}
		if time.Now().After(deadline) {
			var roles []string
			for _, b := range bases {
				roles = append(roles, fmt.Sprintf("%s=%s", b, roleOf(b)))
			}
			t.Fatalf("no successor leader within %v (excluding %s): %s", timeout, not, strings.Join(roles, " "))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// haJob tracks one submission: its stable Idempotency-Key and the job
// ID the cluster currently knows it by. Replication is asynchronous,
// so an admission acked just before a leader died can be lost in the
// failover window — the documented contract is that the client's
// idempotent retry reconverges, and re-submitting on 404 under the
// same key is exactly that retry.
type haJob struct {
	key string
	id  string
}

// TestCoordinatorFailoverChaos is the coordinator-HA gate (make
// ha-chaos): three replicated coordinators (leader + two warm
// standbys, replication links through commanded netchaos proxies),
// three workers joined with the full endpoint list, six idempotent
// jobs in flight — then the leader is SIGKILLed mid-dispatch, its
// replacement rejoins as -standby, and the successor leader is
// partitioned off its peers past the lease TTL. After both failovers a
// standby must be leading, every job must complete exactly once with
// the single-process digest, and a write under any deposed term must
// bounce off the 409 fence. The whole schedule derives from one seed;
// a failure logs the replay line.
func TestCoordinatorFailoverChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinator failover chaos skipped in -short")
	}
	bin := buildDaemon(t)
	base := chaosBaseSeed(t)
	for _, seed := range []int64{base, base + 101, base + 202} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailoverChaos(t, bin, seed)
		})
	}
}

func runFailoverChaos(t *testing.T, bin string, seed int64) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay this exact fault schedule with: DSASIMD_CHAOS_SEED=%d make ha-chaos", seed)
		}
	})
	dir := t.TempDir()
	source := clusterSource(2_500_000)
	want := referenceDigest(t, source)
	rng := rand.New(rand.NewSource(seed))

	// One shared directory for everything — exactly the deployment
	// shape: coordinator state files and the leadership-claim directory
	// live beside the workers' checkpoints, and a CI failure uploads
	// all of it together with the proxy command log.
	shared := sharedDataDir(t, dir)
	if err := os.MkdirAll(shared, 0o755); err != nil {
		t.Fatal(err)
	}
	logFile, err := os.Create(filepath.Join(shared, "ha-netchaos-proxy.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = logFile.Close() })
	var logMu sync.Mutex
	plogf := func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(logFile, format+"\n", args...)
		logMu.Unlock()
		t.Logf(format, args...)
	}

	// Reserve every coordinator's address, then build the replication
	// mesh: node i reaches node j through proxy[i][j], so any node's
	// outbound replication links can be cut on command. Workers and
	// clients use the real addresses — a coordinator partition must not
	// conveniently sever the data plane too.
	addrs := make([]string, haCoordinators)
	bases := make([]string, haCoordinators)
	releases := make([]func(), haCoordinators)
	for i := range addrs {
		addrs[i], releases[i] = reserveAddr(t)
		bases[i] = "http://" + addrs[i]
	}
	proxies := make([][]*netchaos.Proxy, haCoordinators)
	peerList := make([]string, haCoordinators)
	for i := range proxies {
		proxies[i] = make([]*netchaos.Proxy, haCoordinators)
		var peers []string
		for j := range addrs {
			if j == i {
				continue
			}
			p, err := netchaos.NewProxy(addrs[j], plogf)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.Close)
			proxies[i][j] = p
			peers = append(peers, "http://"+p.Addr())
		}
		peerList[i] = strings.Join(peers, ",")
	}
	// isolate cuts every outbound replication link of one node; heal
	// restores them.
	cutOutbound := func(i int) {
		for j, p := range proxies[i] {
			if p != nil {
				plogf("netchaos: cutting replication link %d -> %d", i, j)
				p.Partition(netchaos.PartitionBoth)
			}
		}
	}
	healOutbound := func(i int) {
		for _, p := range proxies[i] {
			if p != nil {
				p.Heal()
			}
		}
	}
	idxOf := func(base string) int {
		for i, b := range bases {
			if b == base {
				return i
			}
		}
		t.Fatalf("unknown base %s", base)
		return -1
	}

	// Boot the set: node 0 leads, the rest start as warm standbys.
	coords := make([]*proc, haCoordinators)
	releases[0]()
	coords[0] = startHACoordinatorProc(t, bin, addrs[0], shared, peerList[0], false)
	for i := 1; i < haCoordinators; i++ {
		releases[i]()
		coords[i] = startHACoordinatorProc(t, bin, addrs[i], shared, peerList[i], true)
	}
	if got := roleOf(bases[0]); got != "leader" {
		t.Fatalf("node 0 role = %q, want leader", got)
	}

	// Three workers, each joined with the full endpoint list: failover
	// is client-side rotation, not reconfiguration.
	endpoints := strings.Join(bases, ",")
	for i := 0; i < 3; i++ {
		startWorkerProc(t, bin, endpoints, shared)
	}
	waitClusterReady(t, bases[0], 30*time.Second)

	// Submissions and polls run through a seeded fault injector: every
	// attempt is ambiguous, and the Idempotency-Key is what keeps
	// retries — including post-failover ones — from minting twins.
	rates, err := netchaos.ParseRates(haClientChaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	injector := netchaos.NewInjector(seed+1000, rates, nil, plogf)
	chaotic := &http.Client{Transport: injector, Timeout: 5 * time.Second}

	jobs := make([]*haJob, 0, haChaosJobs)
	for i := 0; i < haChaosJobs; i++ {
		j := &haJob{key: fmt.Sprintf("ha-%d-%d", seed, i)}
		j.id = submitHA(t, chaotic, bases, source, j.key)
		jobs = append(jobs, j)
	}
	waitAnyRunningHA(t, chaotic, bases, jobs, 30*time.Second)

	// ── Failover 1: SIGKILL the leader mid-dispatch. ──
	leader := waitLeaderAmong(t, bases, "", 10*time.Second)
	li := idxOf(leader)
	coords[li].kill9()
	plogf("chaos: SIGKILLed leader %s mid-dispatch", leader)

	leader2 := waitLeaderAmong(t, bases, leader, 30*time.Second)
	plogf("chaos: %s took over", leader2)

	// The killed node rejoins as a warm standby on its old address.
	waitBindable(t, addrs[li], 15*time.Second)
	coords[li] = startHACoordinatorProc(t, bin, addrs[li], shared, peerList[li], true)
	if got := roleOf(bases[li]); got != "standby" {
		t.Fatalf("restarted node role = %q, want standby", got)
	}

	// ── Failover 2: partition the new leader off its peers past the
	// lease TTL. Workers still reach it; only replication is cut, so
	// the standbys' silence detector — not a dead socket — must drive
	// the takeover, and the deposed leader must notice the successor's
	// claim on the shared directory and step down on its own. ──
	l2 := idxOf(leader2)
	cutOutbound(l2)
	hold := 2*haChaosLeaseTTL + time.Duration(rng.Int63n(int64(haChaosLeaseTTL)))
	plogf("chaos: partitioning leader %s for %v", leader2, hold)
	time.Sleep(hold)
	leader3 := waitLeaderAmong(t, bases, leader2, 30*time.Second)
	plogf("chaos: %s took over from the partitioned leader", leader3)
	healOutbound(l2)

	// The deposed leader steps down (claim-directory scan), never
	// splitting the brain once the successor exists.
	deadline := time.Now().Add(20 * time.Second)
	for roleOf(leader2) != "standby" {
		if time.Now().After(deadline) {
			t.Fatalf("deposed leader %s never stepped down (role %q)", leader2, roleOf(leader2))
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Deposed terms are fenced: a replication write under term 1 — what
	// the first dead leader would send if it were still alive — bounces
	// off the current leader with 409.
	code, err := cluster.PostReplicate(nil, leader3, 1, leader)
	if err != nil {
		t.Fatalf("stale-term replicate: %v", err)
	}
	if code != http.StatusConflict {
		t.Errorf("deposed term's replication write: code %d, want 409", code)
	}

	// Convergence: zero lost jobs, every digest bit-identical to the
	// single-process reference, exactly one job per key.
	waitAllOKHA(t, chaotic, bases, jobs, source, want, 420*time.Second)

	final := waitLeaderAmong(t, bases, "", 10*time.Second)
	if n := countJobs(t, final); n != haChaosJobs {
		t.Errorf("job table holds %d jobs, want %d (idempotent retries must dedup across failovers)", n, haChaosJobs)
	}
	// The idempotency index survived two failovers: a replay of the
	// first key still answers with the original job, marked as such.
	id, replayed := resubmitIdem(t, final, source, jobs[0].key)
	if id != jobs[0].id || !replayed {
		t.Errorf("post-failover replay of %s: id %s replayed %v, want %s true", jobs[0].key, id, replayed, jobs[0].id)
	}

	m := fetchMetrics(t, final)
	for _, counter := range []string{
		"dsasimd_cluster_failovers_total",            // this node promoted itself
		"dsasimd_cluster_replication_rejected_total", // the forged stale write above
	} {
		if n := parseMetric(t, m, counter); n < 1 {
			t.Errorf("%s = %d, want >= 1", counter, n)
		}
	}
	if n := parseMetric(t, m, "dsasimd_cluster_role"); n != 1 {
		t.Errorf("leader's role gauge = %d, want 1", n)
	}
	for _, b := range bases {
		if b != final && roleOf(b) == "standby" {
			if n := parseMetric(t, fetchMetrics(t, b), "dsasimd_cluster_role"); n != 0 {
				t.Errorf("standby %s role gauge = %d, want 0", b, n)
			}
			break
		}
	}
	plogf("netchaos: client injector counts: %s", injector.CountsLine())
}

// submitHA submits one idempotent job through the chaotic client,
// rotating across every coordinator: standbys proxy to the leader, so
// any live node can confirm the admission.
func submitHA(t *testing.T, client *http.Client, bases []string, source, key string) string {
	t.Helper()
	for attempt := 0; attempt < 60; attempt++ {
		if id := trySubmitIdem(client, bases[attempt%len(bases)], source, key); id != "" {
			return id
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s: no submission attempt ever confirmed", key)
	return ""
}

// tryFetchJob reads one job via one node; the bool reports a usable
// 200 (anything else — standby refusal mid-transition, dead node,
// injected fault — means try elsewhere).
func tryFetchJob(client *http.Client, base, id string) (jobView, int) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return jobView{}, 0
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return jobView{}, 0
		}
	}
	return v, resp.StatusCode
}

// waitAnyRunningHA blocks until at least one job is leased and
// running on some reachable node, so the leader kill lands
// mid-dispatch.
func waitAnyRunningHA(t *testing.T, client *http.Client, bases []string, jobs []*haJob, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for i, j := range jobs {
			v, code := tryFetchJob(client, bases[i%len(bases)], j.id)
			if code == http.StatusOK && v.Status == "running" && v.Owner != "" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no job ever started running")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitAllOKHA polls every job across every node until all are
// terminal, re-submitting under the same Idempotency-Key on 404 —
// replication is asynchronous, and an admission acked in a doomed
// leader's final moments is allowed to be lost as long as the
// idempotent retry reconverges. Then asserts every job finished ok
// with the reference digest.
func waitAllOKHA(t *testing.T, client *http.Client, bases []string, jobs []*haJob, source, wantDigest string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for round := 0; ; round++ {
		done := 0
		for _, j := range jobs {
			v, code := tryFetchJob(client, bases[round%len(bases)], j.id)
			switch {
			case code == http.StatusNotFound:
				// Lost in a failover window: the idempotent retry either
				// finds the job under its new identity or recreates it.
				if id := trySubmitIdem(client, bases[round%len(bases)], source, j.key); id != "" {
					t.Logf("job %s lost in failover; idempotent retry reconverged as %s", j.id, id)
					j.id = id
				}
			case code == http.StatusOK && (v.Status == "ok" || v.Status == "degraded" || v.Status == "failed"):
				done++
			}
		}
		if done == len(jobs) {
			break
		}
		if time.Now().After(deadline) {
			var states []string
			for _, j := range jobs {
				v, code := tryFetchJob(client, bases[round%len(bases)], j.id)
				states = append(states, fmt.Sprintf("%s=%s(code %d)", j.id, v.Status, code))
			}
			t.Fatalf("jobs not terminal after %v: %s", timeout, strings.Join(states, " "))
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, j := range jobs {
		var v jobView
		code := 0
		for _, b := range bases {
			if v, code = tryFetchJob(client, b, j.id); code == http.StatusOK {
				break
			}
		}
		if code != http.StatusOK {
			t.Errorf("job %s unreadable at the end (code %d)", j.id, code)
			continue
		}
		if v.Status != "ok" {
			t.Errorf("job %s: status %s, want ok", j.id, v.Status)
			continue
		}
		if v.Result == nil || v.Result.MemDigest != wantDigest {
			t.Errorf("job %s diverged from the single-process reference: %+v", j.id, v.Result)
		}
	}
}
