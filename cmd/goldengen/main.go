// Command goldengen captures the interpreter's observable behaviour —
// memory digest, tick count, retired-step count and DSA fallback
// attribution — for every workload under every execution mode, as a
// JSON golden file. The predecode differential test replays the suite
// against this file, so the goldens pin the semantics of the
// interpreter that generated them.
//
// Regenerate only when an intentional semantic change is made (and say
// so in the commit): `go run ./cmd/goldengen -out internal/experiments/testdata/golden_digests.json`
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/vectorize"
	"repro/internal/workloads"
)

// DSAStats is the detection-engine accounting pinned for dsa modes
// (schema v2): the watch-path overhaul must replay every one of these
// counters exactly, so memoized fast paths cannot silently skip work
// the slow path would have charged.
type DSAStats struct {
	AnalysisTicks    int64  `json:"analysis_ticks"`
	StateTransitions uint64 `json:"state_transitions"`
	LoopsDetected    uint64 `json:"loops_detected"`
	DSACacheAccesses uint64 `json:"dsa_cache_accesses"`
	DSACacheHits     uint64 `json:"dsa_cache_hits"`
	VCacheAccesses   uint64 `json:"vcache_accesses"`
	CIDPCompares     uint64 `json:"cidp_compares"`
	ArrayMapAccesses uint64 `json:"array_map_accesses"`
	Takeovers        uint64 `json:"takeovers"`
	VectorizedIters  uint64 `json:"vectorized_iters"`
	LeftoverElements uint64 `json:"leftover_elements"`
	OverheadTicks    int64  `json:"overhead_ticks"`
	// Adaptive-policy counters (schema v3); zero in every other mode.
	PolicyKept      uint64 `json:"policy_kept,omitempty"`
	PolicySuspended uint64 `json:"policy_suspended,omitempty"`
	PolicyTrialed   uint64 `json:"policy_trialed,omitempty"`
}

// Golden is one workload/mode observation.
type Golden struct {
	Workload        string            `json:"workload"`
	Mode            string            `json:"mode"`
	MemDigest       string            `json:"mem_digest"` // mem.Memory.Sum64, hex
	Ticks           int64             `json:"ticks"`
	Steps           uint64            `json:"steps"`
	FallbackReasons map[string]uint64 `json:"fallback_reasons,omitempty"`
	DSA             *DSAStats         `json:"dsa,omitempty"` // dsa modes only
}

// File is the golden file layout.
type File struct {
	Schema  string   `json:"schema"`
	Goldens []Golden `json:"goldens"`
}

var modes = []experiments.Mode{
	experiments.ModeScalar, experiments.ModeAutoVec, experiments.ModeHand,
	experiments.ModeDSAOrig, experiments.ModeDSAExt, experiments.ModeDSAAdaptive,
}

func runOne(w *workloads.Workload, mode experiments.Mode) (*Golden, error) {
	g := &Golden{Workload: w.Name, Mode: string(mode)}
	var m *cpu.Machine
	switch mode {
	case experiments.ModeScalar:
		m = cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
	case experiments.ModeAutoVec:
		prog, _, err := vectorize.AutoVectorize(w.Scalar(), vectorize.Options{NoAlias: w.NoAlias})
		if err != nil {
			return nil, err
		}
		m = cpu.MustNew(prog, cpu.DefaultConfig())
	case experiments.ModeHand:
		prog := w.Scalar()
		if w.Hand != nil {
			prog = w.Hand()
		}
		m = cpu.MustNew(prog, cpu.DefaultConfig())
	case experiments.ModeDSAOrig, experiments.ModeDSAExt, experiments.ModeDSAAdaptive:
		cfg := dsa.DefaultConfig()
		switch mode {
		case experiments.ModeDSAOrig:
			cfg = dsa.OriginalConfig()
		case experiments.ModeDSAAdaptive:
			cfg = dsa.AdaptiveConfig()
		}
		s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
		if err != nil {
			return nil, err
		}
		w.Setup(s.M)
		if err := s.Run(); err != nil {
			return nil, err
		}
		if err := w.Check(s.M); err != nil {
			return nil, err
		}
		st := s.Stats().Snapshot()
		g.FallbackReasons = st.FallbackReasons
		g.DSA = &DSAStats{
			AnalysisTicks:    st.AnalysisTicks,
			StateTransitions: st.StateTransitions,
			LoopsDetected:    st.LoopsDetected,
			DSACacheAccesses: st.DSACacheAccesses,
			DSACacheHits:     st.DSACacheHits,
			VCacheAccesses:   st.VCacheAccesses,
			CIDPCompares:     st.CIDPCompares,
			ArrayMapAccesses: st.ArrayMapAccesses,
			Takeovers:        st.Takeovers,
			VectorizedIters:  st.VectorizedIters,
			LeftoverElements: st.LeftoverElements,
			OverheadTicks:    st.OverheadTicks,
			PolicyKept:       st.PolicyKept,
			PolicySuspended:  st.PolicySuspended,
			PolicyTrialed:    st.PolicyTrialed,
		}
		g.MemDigest = fmt.Sprintf("%016x", s.M.Mem.Sum64())
		g.Ticks = s.M.Ticks
		g.Steps = s.M.Steps
		return g, nil
	}
	w.Setup(m)
	if err := m.Run(nil); err != nil {
		return nil, err
	}
	if err := w.Check(m); err != nil {
		return nil, err
	}
	g.MemDigest = fmt.Sprintf("%016x", m.Mem.Sum64())
	g.Ticks = m.Ticks
	g.Steps = m.Steps
	return g, nil
}

func main() {
	out := flag.String("out", "internal/experiments/testdata/golden_digests.json", "output path")
	flag.Parse()
	f := File{Schema: "golden_digests/v3"}
	for _, w := range workloads.All() {
		for _, mode := range modes {
			g, err := runOne(w, mode)
			if err != nil {
				fmt.Fprintf(os.Stderr, "goldengen: %s/%s: %v\n", w.Name, mode, err)
				os.Exit(1)
			}
			f.Goldens = append(f.Goldens, *g)
		}
	}
	b, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("goldengen: wrote %d goldens to %s\n", len(f.Goldens), *out)
}
