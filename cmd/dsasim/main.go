// Command dsasim runs one benchmark workload under one system setup
// and reports timing, energy and DSA activity — the single-run
// equivalent of cmd/experiments.
//
//	dsasim -workload rgb_gray -mode neon-dsa-extended -v
//
// Robustness modes:
//
//	dsasim -verify                          # differential oracle over every workload
//	dsasim -workload mm_32 -verify          # oracle over one workload (hard mode)
//	dsasim -workload mm_32 -fault corrupt-cache   # fault injection + oracle fallback
//
// Batch mode runs the workload × config matrix concurrently under the
// simulation supervisor (bounded worker pool, per-job deadlines, panic
// isolation, retry and DSA-off degradation):
//
//	dsasim -batch                                    # whole suite, extended DSA
//	dsasim -batch -configs extended,original,scalar  # full matrix
//	dsasim -batch -fault corrupt-cache -retries 2    # chaos batch
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("workload", "", "workload name ("+strings.Join(workloads.Names(), ", ")+")")
	mode := flag.String("mode", string(experiments.ModeDSAExt),
		"system setup: arm-original, neon-autovec, neon-hand, neon-dsa-original, neon-dsa-extended, neon-dsa-adaptive")
	verbose := flag.Bool("v", false, "print instruction counts and DSA internals")
	listing := flag.Bool("listing", false, "disassemble the executed program")
	trace := flag.Uint64("trace", 0, "print the first N retired instructions of a scalar run")
	loops := flag.Bool("loops", false, "print the DSA cache contents (per-loop verdicts and generated SIMD)")
	verify := flag.Bool("verify", false, "shadow every takeover with a scalar replay and fail on the first divergence (no -workload: check the whole suite)")
	fault := flag.String("fault", "none", "inject a fault class into every takeover: none, corrupt-cache, cidp-skew, truncated-range, executor-error (runs with the oracle as fallback)")
	faultEvery := flag.Uint64("fault-every", 1, "arm the injected fault on every Nth takeover")
	batch := flag.Bool("batch", false, "run the workload × config matrix concurrently under the simulation supervisor")
	configs := flag.String("configs", "extended", "batch: comma list of system configs (extended, original, adaptive, scalar)")
	workers := flag.Int("workers", 0, "batch: worker pool size (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "batch: per-attempt deadline (0 = none)")
	retries := flag.Int("retries", 1, "batch: extra attempts after a fault-classified failure")
	memBudget := flag.Int64("mem-budget", 0, "batch: cap on in-flight job memory in MiB (0 = default, -1 = unlimited)")
	hard := flag.Bool("hard", false, "batch: surface oracle divergences as job failures (retry/degrade) instead of in-run fallbacks")
	snapshotDir := flag.String("snapshot-dir", "", "batch: directory for durable per-job checkpoints (empty = checkpointing off)")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "batch: steps between checkpoints (0 = runner default)")
	resume := flag.Bool("resume", false, "batch: resume each job from a checkpoint left in -snapshot-dir by a previous run")
	jsonOut := flag.Bool("json", false, "batch: emit one JSON result line per job to stdout (the dsasimd service schema); summary goes to stderr")
	flag.Parse()

	faultKind, err := dsa.ParseFaultKind(*fault)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *batch {
		os.Exit(runBatch(batchFlags{
			workloads: *name,
			configs:   *configs,
			workers:   *workers,
			timeout:   *jobTimeout,
			retries:   *retries,
			memBudget: *memBudget,
			fault:     faultKind,
			faultN:    *faultEvery,
			verifyOn:  *verify,
			hard:      *hard,
			verbose:   *verbose,
			snapDir:   *snapshotDir,
			snapEvery: *snapshotEvery,
			resume:    *resume,
			jsonOut:   *jsonOut,
		}))
	}
	if *verify || faultKind != dsa.FaultNone {
		os.Exit(runGuarded(*name, faultKind, *faultEvery, *verify))
	}

	if *name == "" {
		fmt.Fprintln(os.Stderr, "usage: dsasim -workload <name> [-mode <mode>] [-v]")
		fmt.Fprintln(os.Stderr, "workloads:", strings.Join(workloads.Names(), ", "))
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *listing {
		fmt.Println(w.Scalar().String())
		return
	}
	if *trace > 0 {
		m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
		w.Setup(m)
		t := &cpu.Tracer{W: os.Stdout, Limit: *trace}
		if err := m.Run(t); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "... %d records shown; run halted after %d instructions\n", t.Count(), m.Steps)
		return
	}

	base, err := experiments.Run(w, experiments.ModeScalar)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := experiments.Run(w, experiments.Mode(*mode))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload:   %s — %s (DLP: %s)\n", w.Name, w.Description, w.DLP)
	fmt.Printf("mode:       %s\n", r.Mode)
	fmt.Printf("ticks:      %d (scalar %d) → speedup %.2fx\n",
		r.Ticks, base.Ticks, float64(base.Ticks)/float64(r.Ticks))
	fmt.Printf("energy:     %.1f nJ (scalar %.1f) → savings %.1f%%\n",
		r.Energy.Total(), base.Energy.Total(),
		(1-r.Energy.Total()/base.Energy.Total())*100)
	fmt.Printf("verified:   output matches the Go reference\n")

	if *verbose {
		fmt.Printf("\ncounts:     %+v\n", r.Counts)
		fmt.Printf("L1:         %+v   L2: %+v\n", r.L1, r.L2)
		fmt.Printf("energy:     frontend=%.1f scalar=%.1f caches=%.1f neon=%.1f dsa=%.1f nJ\n",
			r.Energy.FrontEnd, r.Energy.Scalar, r.Energy.Caches, r.Energy.NEON, r.Energy.DSA)
		if r.DSA != nil {
			st := r.DSA
			fmt.Printf("\nDSA:        takeovers=%d vectorized-iters=%d leftover-elements=%d\n",
				st.Takeovers, st.VectorizedIters, st.LeftoverElements)
			fmt.Printf("            cache: accesses=%d hits=%d  vcache: accesses=%d overflows=%d\n",
				st.DSACacheAccesses, st.DSACacheHits, st.VCacheAccesses, st.VCacheOverflows)
			fmt.Printf("            analysis=%d ticks (%.2f%% of run, hidden)  switch overhead=%d ticks\n",
				st.AnalysisTicks, st.DetectionShare(r.Ticks)*100, st.OverheadTicks)
			fmt.Printf("            loop census: %v\n", st.ByKind)
			if r.Mode == experiments.ModeDSAAdaptive {
				fmt.Printf("            policy: kept=%d suspended=%d trialed=%d\n",
					st.PolicyKept, st.PolicySuspended, st.PolicyTrialed)
			}
			if st.Fallbacks > 0 {
				fmt.Printf("            fallbacks=%d %s dropped-requests=%d\n",
					st.Fallbacks, fmtReasons(st.FallbackReasons), st.DroppedRequests)
			}
			if len(st.RejectedReasons) > 0 {
				keys := make([]string, 0, len(st.RejectedReasons))
				for k := range st.RejectedReasons {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				fmt.Printf("            rejections:")
				for _, k := range keys {
					fmt.Printf(" %s×%d", k, st.RejectedReasons[k])
				}
				fmt.Println()
			}
		}
		if r.Report != nil {
			fmt.Printf("\nautovec:    %d loops vectorized, inhibitors %v\n",
				r.Report.VectorizedCount(), r.Report.Inhibitors())
		}
	}

	if *loops {
		sys, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w.Setup(sys.M)
		if err := sys.Run(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("\nDSA cache after an extended-DSA run:")
		for _, lr := range sys.E.Report() {
			if lr.Vectorizable {
				fmt.Printf("  loop @%d: %s, %d lanes of %s\n", lr.LoopID, lr.Kind, lr.Lanes, lr.ElemDT)
				for _, in := range lr.Listing {
					fmt.Printf("      %s\n", in)
				}
			} else {
				fmt.Printf("  loop @%d: not vectorizable (%s)\n", lr.LoopID, lr.Reason)
			}
		}
	}
}

// runGuarded executes workloads under the guarded-takeover robustness
// modes and returns the process exit code. With name empty, the whole
// suite runs — the acceptance gate `dsasim -verify`.
func runGuarded(name string, kind dsa.FaultKind, everyN uint64, verify bool) int {
	var list []*workloads.Workload
	if name == "" {
		list = workloads.All()
	} else {
		w, err := workloads.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		list = []*workloads.Workload{w}
	}

	cfg := dsa.DefaultConfig()
	cfg.Fault = dsa.FaultConfig{Kind: kind, EveryN: everyN}
	if kind != dsa.FaultNone {
		// Fault runs need the oracle as a safety net: silent classes
		// (corrupt-cache, truncated-range) are invisible to the guards.
		cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: true}
	} else if verify {
		cfg.Verify = dsa.VerifyConfig{Enabled: true}
	}

	failed := 0
	for _, w := range list {
		sys, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", w.Name, err)
			failed++
			continue
		}
		w.Setup(sys.M)
		if err := sys.Run(); err != nil {
			fmt.Printf("%-12s FAIL  %v\n", w.Name, err)
			failed++
			continue
		}
		if err := w.Check(sys.M); err != nil {
			fmt.Printf("%-12s FAIL  output check: %v\n", w.Name, err)
			failed++
			continue
		}
		st := sys.Stats()
		line := fmt.Sprintf("%-12s ok    takeovers=%d verified=%d divergences=%d",
			w.Name, st.Takeovers, st.VerifiedTakeovers, st.Divergences)
		if st.Fallbacks > 0 {
			line += fmt.Sprintf(" fallbacks=%d %v", st.Fallbacks, fmtReasons(st.FallbackReasons))
		}
		fmt.Println(line)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d workloads failed\n", failed, len(list))
		return 1
	}
	return 0
}

// fmtReasons renders a reason histogram deterministically.
func fmtReasons(m map[string]uint64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s×%d", k, m[k]))
	}
	return "(" + strings.Join(parts, " ") + ")"
}
