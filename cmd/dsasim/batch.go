package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/workloads"
)

// batchFlags carries the -batch mode's knobs from main.
type batchFlags struct {
	workloads string // comma list ("" = whole suite)
	configs   string // comma list of DSA config names
	workers   int
	timeout   time.Duration
	retries   int
	memBudget int64 // MiB (0 = runner default, -1 = unlimited)
	fault     dsa.FaultKind
	faultN    uint64
	verifyOn  bool
	hard      bool
	verbose   bool
	snapDir   string
	snapEvery uint64
	resume    bool
	// jsonOut emits one JSON result line per job to stdout — the same
	// ResultJSON schema the dsasimd service returns, so CLI and
	// service results are diffable. Human-readable reporting moves to
	// stderr.
	jsonOut bool
}

// runBatch executes the workload × config job matrix under the
// supervisor and prints per-job lines plus the aggregate report.
// Returns the process exit code.
func runBatch(f batchFlags) int {
	var ws []*workloads.Workload
	if f.workloads == "" {
		ws = workloads.All()
	} else {
		for _, name := range strings.Split(f.workloads, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			ws = append(ws, w)
		}
	}

	var jobs []runner.Job
	for _, cfgName := range strings.Split(f.configs, ",") {
		cfgName = strings.TrimSpace(cfgName)
		cfg, dsaOff, err := server.ConfigByName(cfgName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if !dsaOff {
			cfg.Fault = dsa.FaultConfig{Kind: f.fault, EveryN: f.faultN}
			switch {
			case f.fault != dsa.FaultNone:
				// Faulted batches need the oracle as the safety net for
				// the silent classes; -hard surfaces divergences to the
				// retry/degradation ladder instead.
				cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: !f.hard}
			case f.verifyOn:
				cfg.Verify = dsa.VerifyConfig{Enabled: true, Fallback: !f.hard}
			}
		}
		for _, w := range ws {
			jobs = append(jobs, runner.Job{
				Name:     w.Name + "/" + cfgName,
				Workload: w,
				CPU:      cpu.DefaultConfig(),
				DSA:      cfg,
				DSAOff:   dsaOff,
			})
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := runner.Options{
		Workers:       f.workers,
		Timeout:       f.timeout,
		Retries:       f.retries,
		Backoff:       100 * time.Millisecond,
		SnapshotDir:   f.snapDir,
		SnapshotEvery: f.snapEvery,
		Resume:        f.resume,
	}
	if f.memBudget > 0 {
		opts.MemBudgetBytes = f.memBudget << 20
	} else if f.memBudget < 0 {
		opts.MemBudgetBytes = -1
	}

	rep := runner.Run(ctx, jobs, opts)

	if f.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range rep.Results {
			if err := enc.Encode(server.ResultFromRunner(r)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		fmt.Fprintf(os.Stderr, "batch: %d jobs — %d ok, %d degraded, %d failed; %d retries; wall %s\n",
			len(rep.Results), rep.OK, rep.Degrade, rep.Failed, rep.Retries, rep.Wall.Round(time.Millisecond))
		if rep.Failed > 0 {
			return 1
		}
		return 0
	}

	for _, r := range rep.Results {
		line := fmt.Sprintf("%-24s %-9s", r.Job, r.Status)
		if r.Cause != "" {
			line += " cause=" + r.Cause
		}
		if r.Attempts > 1 {
			line += fmt.Sprintf(" attempts=%d", r.Attempts)
		}
		if r.ResumedFromStep > 0 {
			line += fmt.Sprintf(" resumed-from=%d", r.ResumedFromStep)
		}
		if r.ResumeNote != "" {
			line += " snapshot=" + r.ResumeNote
		}
		if r.Stats != nil {
			line += fmt.Sprintf(" takeovers=%d", r.Stats.Takeovers)
			if r.Stats.Fallbacks > 0 {
				line += fmt.Sprintf(" fallbacks=%d %s", r.Stats.Fallbacks, fmtReasons(r.Stats.FallbackReasons))
			}
			if r.Stats.PolicyKept+r.Stats.PolicySuspended+r.Stats.PolicyTrialed > 0 {
				line += fmt.Sprintf(" policy=kept:%d,susp:%d,trial:%d",
					r.Stats.PolicyKept, r.Stats.PolicySuspended, r.Stats.PolicyTrialed)
			}
		}
		line += fmt.Sprintf(" wall=%s", r.Wall.Round(100*time.Microsecond))
		fmt.Println(line)
		if f.verbose && r.Err != nil {
			fmt.Printf("    error: %v\n", r.Err)
		}
	}
	fmt.Printf("\nbatch: %d jobs — %d ok, %d degraded, %d failed; %d retries; wall %s\n",
		len(rep.Results), rep.OK, rep.Degrade, rep.Failed, rep.Retries, rep.Wall.Round(time.Millisecond))

	if rep.Failed > 0 {
		return 1
	}
	return 0
}
