// Command benchsim measures simulator throughput — how fast the host
// interpreter retires simulated instructions — and persists the result
// as BENCH_sim.json so interpreter-performance regressions show up in
// review as a diff, not as a vague feeling that CI got slower.
//
// Unlike bench_test.go, which reports the *simulated machine's*
// behaviour (ticks, speedups, energy), this tool times the simulator
// itself: wall-clock per workload run, in scalar mode and under the
// original, extended and adaptive DSA systems. Machine construction
// and workload setup are excluded — they are one-time costs dominated
// by zeroing the 16 MiB memory image, not interpreter work.
//
// Under a DSA mode the scalar core retires FEWER instructions for the
// same workload (vectorized windows execute on the NEON model), so
// raw retired-steps-per-second would flatter slow DSA runs. Each
// result therefore also carries equivalent_scalar_steps — the steps
// the scalar interpreter retires for the identical workload — and
// eq_steps_per_sec normalizes wall-clock against THAT, making the
// number comparable across modes: it answers "how fast does this mode
// get through the same work", not "how fast does it spin".
//
// Each result also carries energy_nj, the simulated machine's modeled
// energy for the run, so the per-mode energy profile travels with the
// throughput numbers.
//
// Usage: go run ./cmd/benchsim -out BENCH_sim.json [-reps 3]
// Each (workload, mode) pair runs reps times; the fastest wall time is
// kept (minimum-of-N rejects scheduler noise, the standard practice
// for throughput benchmarks).
//
// With -baseline <file>, benchsim additionally compares the measured
// dsa-extended/scalar wall-clock ratio against the baseline file's and
// exits non-zero when it regressed by more than -slack (default 10%).
// The ratio — not absolute wall time — is compared, so the gate is
// meaningful on CI hosts of any speed.
//
// The adaptive gate is same-run and always on: per workload, the
// dsa-adaptive SIMULATED ticks must not exceed min(scalar,
// dsa-extended) × -slack, and its HOST wall must not exceed
// dsa-extended × -slack + -adaptive-eps. The adaptive policy's claim
// is "never much worse than the better static choice on the paper's
// objective, at negligible bookkeeping cost"; this gate holds it to
// both halves on every host (see checkAdaptive for why host wall is
// not compared against scalar).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// Result is one (workload, mode) throughput measurement.
type Result struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Steps    uint64 `json:"steps"`   // simulated instructions retired by the scalar core
	Ticks    int64  `json:"ticks"`   // simulated time consumed
	WallNS   int64  `json:"wall_ns"` // host wall-clock, best of reps
	// EqScalarSteps is the scalar-mode retirement count for the same
	// workload — the common work denominator across modes.
	EqScalarSteps uint64  `json:"equivalent_scalar_steps"`
	EqStepsPerSec float64 `json:"eq_steps_per_sec"` // EqScalarSteps / wall
	// EnergyNJ is the simulated machine's modeled energy for the run.
	EnergyNJ float64 `json:"energy_nj"`
}

// Totals aggregates one mode across the whole suite.
type Totals struct {
	Steps         uint64  `json:"steps"`
	WallNS        int64   `json:"wall_ns"`
	EqScalarSteps uint64  `json:"equivalent_scalar_steps"`
	EqStepsPerSec float64 `json:"eq_steps_per_sec"`
	EnergyNJ      float64 `json:"energy_nj"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Schema    string            `json:"schema"`
	GoVersion string            `json:"go_version"`
	Reps      int               `json:"reps"`
	Workloads []string          `json:"workloads"`
	Results   []Result          `json:"results"`
	Totals    map[string]Totals `json:"totals"`
}

var modes = []string{"scalar", "dsa-original", "dsa-extended", "dsa-adaptive"}

// runScalar times one scalar-mode run; returns steps, ticks, wall,
// modeled energy.
func runScalar(w *workloads.Workload) (uint64, int64, time.Duration, float64, error) {
	m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
	w.Setup(m)
	start := time.Now()
	err := m.Run(nil)
	wall := time.Since(start)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := w.Check(m); err != nil {
		return 0, 0, 0, 0, err
	}
	nj := energy.Compute(energy.DefaultParams(), m.Counts,
		m.Caches.L1Stats(), m.Caches.L2Stats(), energy.DSAEvents{}).Total()
	return m.Steps, m.Ticks, wall, nj, nil
}

// runDSA times one run under a DSA system. The step count is the
// scalar core's retirement count; takeover-executed work shows up as
// fewer steps over the same workload, which is exactly the simulator
// cost profile the DSA modes have.
func runDSA(w *workloads.Workload, cfg dsa.Config) (uint64, int64, time.Duration, float64, error) {
	s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	w.Setup(s.M)
	start := time.Now()
	err = s.Run()
	wall := time.Since(start)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := w.Check(s.M); err != nil {
		return 0, 0, 0, 0, err
	}
	nj := energy.Compute(energy.DefaultParams(), s.M.Counts,
		s.M.Caches.L1Stats(), s.M.Caches.L2Stats(), s.Stats().EnergyEvents()).Total()
	return s.M.Steps, s.M.Ticks, wall, nj, nil
}

func measure(w *workloads.Workload, mode string, reps int) (Result, error) {
	r := Result{Workload: w.Name, Mode: mode}
	for i := 0; i < reps; i++ {
		var (
			steps uint64
			ticks int64
			wall  time.Duration
			nj    float64
			err   error
		)
		switch mode {
		case "scalar":
			steps, ticks, wall, nj, err = runScalar(w)
		case "dsa-original":
			steps, ticks, wall, nj, err = runDSA(w, dsa.OriginalConfig())
		case "dsa-adaptive":
			steps, ticks, wall, nj, err = runDSA(w, dsa.AdaptiveConfig())
		default:
			steps, ticks, wall, nj, err = runDSA(w, dsa.DefaultConfig())
		}
		if err != nil {
			return r, err
		}
		if i == 0 || wall.Nanoseconds() < r.WallNS {
			r.WallNS = wall.Nanoseconds()
		}
		r.Steps, r.Ticks, r.EnergyNJ = steps, ticks, nj
	}
	return r, nil
}

// checkBaseline enforces the wall-clock regression gate: the measured
// dsa-extended/scalar ratio must not exceed the baseline's by more
// than slack (1.10 = +10%).
func checkBaseline(f *File, path string, slack float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	ratio := func(file *File) (float64, error) {
		dx, ok1 := file.Totals["dsa-extended"]
		sc, ok2 := file.Totals["scalar"]
		if !ok1 || !ok2 || sc.WallNS == 0 {
			return 0, fmt.Errorf("missing scalar/dsa-extended totals")
		}
		return float64(dx.WallNS) / float64(sc.WallNS), nil
	}
	now, err := ratio(f)
	if err != nil {
		return err
	}
	was, err := ratio(&base)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("benchsim: dsa-extended/scalar wall ratio %.3f (baseline %.3f, slack ×%.2f)\n",
		now, was, slack)
	if now > was*slack {
		return fmt.Errorf("dsa-extended wall-clock regressed: ratio %.3f > baseline %.3f × %.2f",
			now, was, slack)
	}
	return nil
}

// checkAdaptive enforces the adaptive-policy gate from this run's own
// measurements, per workload, in two parts:
//
//  1. Simulated ticks: dsa-adaptive ≤ min(scalar, dsa-extended) ×
//     slack. Ticks are what the policy actually optimizes — fully
//     deterministic and free of host noise — so this asserts the
//     bandit never loses the paper's objective to either static
//     choice.
//  2. Host wall: dsa-adaptive ≤ dsa-extended × slack + epsNS. The
//     adaptive engine does at most the extended engine's work plus
//     the (cheap) ledger bookkeeping; this catches the bookkeeping
//     becoming expensive. epsNS is an absolute grace for
//     sub-millisecond workloads where scheduler noise swamps ratios.
//
// (Host wall is deliberately NOT compared against scalar: simulating
// a winning NEON takeover can cost more host time than plain scalar
// interpretation, and the policy — deterministic by construction —
// never sees host clocks.)
//
// No baseline file is involved, so the gate holds on hosts of any
// speed.
func checkAdaptive(f *File, slack float64, epsNS int64) error {
	type meas struct{ wall, ticks int64 }
	byWL := map[string]map[string]meas{} // workload → mode → measurement
	for _, r := range f.Results {
		if byWL[r.Workload] == nil {
			byWL[r.Workload] = map[string]meas{}
		}
		byWL[r.Workload][r.Mode] = meas{wall: r.WallNS, ticks: r.Ticks}
	}
	var bad []string
	for _, name := range f.Workloads {
		m := byWL[name]
		sc, okS := m["scalar"]
		dx, okX := m["dsa-extended"]
		ad, okA := m["dsa-adaptive"]
		if !okS || !okX || !okA {
			return fmt.Errorf("workload %s missing a mode measurement", name)
		}
		bestTicks := sc.ticks
		if dx.ticks < bestTicks {
			bestTicks = dx.ticks
		}
		tickLimit := int64(float64(bestTicks) * slack)
		wallLimit := int64(float64(dx.wall)*slack) + epsNS
		fmt.Printf("benchsim: adaptive gate %-12s ticks %9d (limit %9d)  wall %8.2f ms (limit %8.2f ms)\n",
			name, ad.ticks, tickLimit, float64(ad.wall)/1e6, float64(wallLimit)/1e6)
		if ad.ticks > tickLimit {
			bad = append(bad, fmt.Sprintf("%s: adaptive %d ticks > min(scalar %d, dsa-ext %d) × %.2f",
				name, ad.ticks, sc.ticks, dx.ticks, slack))
		}
		if ad.wall > wallLimit {
			bad = append(bad, fmt.Sprintf("%s: adaptive wall %.2fms > dsa-ext %.2fms × %.2f + %.2fms",
				name, float64(ad.wall)/1e6, float64(dx.wall)/1e6, slack, float64(epsNS)/1e6))
		}
	}
	if len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, "benchsim: adaptive gate: "+line)
		}
		return fmt.Errorf("adaptive policy lost to the best static mode on %d count(s)", len(bad))
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per measurement (best kept)")
	baseline := flag.String("baseline", "", "baseline BENCH_sim.json to gate the dsa-extended/scalar ratio against")
	slack := flag.Float64("slack", 1.10, "allowed ratio regression factor vs -baseline (also the adaptive gate's ratio)")
	adaptiveEps := flag.Duration("adaptive-eps", 250*time.Microsecond,
		"absolute grace added to the adaptive wall gate (noise floor for sub-ms workloads)")
	flag.Parse()

	f := File{
		Schema:    "bench_sim/v3",
		GoVersion: runtime.Version(),
		Reps:      *reps,
		Workloads: experiments.Article1Workloads,
		Totals:    map[string]Totals{},
	}
	// Scalar retirement counts per workload: the eq-steps denominator
	// for every mode (for scalar itself, eq steps == steps).
	scalarSteps := map[string]uint64{}
	for _, mode := range modes {
		var tot Totals
		for _, name := range experiments.Article1Workloads {
			w, err := workloads.ByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
				os.Exit(1)
			}
			r, err := measure(w, mode, *reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsim: %s/%s: %v\n", name, mode, err)
				os.Exit(1)
			}
			if mode == "scalar" {
				scalarSteps[name] = r.Steps
			}
			r.EqScalarSteps = scalarSteps[name]
			r.EqStepsPerSec = float64(r.EqScalarSteps) / (float64(r.WallNS) * 1e-9)
			f.Results = append(f.Results, r)
			tot.Steps += r.Steps
			tot.WallNS += r.WallNS
			tot.EqScalarSteps += r.EqScalarSteps
			tot.EnergyNJ += r.EnergyNJ
			fmt.Printf("%-12s %-14s %9d steps  %8.2f ms  %7.1f eq-Msteps/s  %12.1f nJ\n",
				name, mode, r.Steps, float64(r.WallNS)/1e6, r.EqStepsPerSec/1e6, r.EnergyNJ)
		}
		tot.EqStepsPerSec = float64(tot.EqScalarSteps) / (float64(tot.WallNS) * 1e-9)
		f.Totals[mode] = tot
		fmt.Printf("%-12s %-14s %9d steps  %8.2f ms  %7.1f eq-Msteps/s  %12.1f nJ\n",
			"TOTAL", mode, tot.Steps, float64(tot.WallNS)/1e6, tot.EqStepsPerSec/1e6, tot.EnergyNJ)
	}

	if err := checkAdaptive(&f, *slack, adaptiveEps.Nanoseconds()); err != nil {
		fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := checkBaseline(&f, *baseline, *slack); err != nil {
			fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
			os.Exit(1)
		}
	}

	b, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchsim: wrote %s\n", *out)
}
