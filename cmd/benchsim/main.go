// Command benchsim measures simulator throughput — how fast the host
// interpreter retires simulated instructions — and persists the result
// as BENCH_sim.json so interpreter-performance regressions show up in
// review as a diff, not as a vague feeling that CI got slower.
//
// Unlike bench_test.go, which reports the *simulated machine's*
// behaviour (ticks, speedups, energy), this tool times the simulator
// itself: wall-clock per workload run, retired steps per second, in
// scalar mode and under the DSA system. Machine construction and
// workload setup are excluded — they are one-time costs dominated by
// zeroing the 16 MiB memory image, not interpreter work.
//
// Usage: go run ./cmd/benchsim -out BENCH_sim.json [-reps 3]
// Each (workload, mode) pair runs reps times; the fastest wall time is
// kept (minimum-of-N rejects scheduler noise, the standard practice
// for throughput benchmarks).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// Result is one (workload, mode) throughput measurement.
type Result struct {
	Workload    string  `json:"workload"`
	Mode        string  `json:"mode"`
	Steps       uint64  `json:"steps"`         // simulated instructions retired
	Ticks       int64   `json:"ticks"`         // simulated time consumed
	WallNS      int64   `json:"wall_ns"`       // host wall-clock, best of reps
	StepsPerSec float64 `json:"steps_per_sec"` // Steps / WallNS
}

// Totals aggregates one mode across the whole suite.
type Totals struct {
	Steps       uint64  `json:"steps"`
	WallNS      int64   `json:"wall_ns"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Schema    string            `json:"schema"`
	GoVersion string            `json:"go_version"`
	Reps      int               `json:"reps"`
	Workloads []string          `json:"workloads"`
	Results   []Result          `json:"results"`
	Totals    map[string]Totals `json:"totals"`
}

// runScalar times one scalar-mode run; returns steps, ticks, wall.
func runScalar(w *workloads.Workload) (uint64, int64, time.Duration, error) {
	m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
	w.Setup(m)
	start := time.Now()
	err := m.Run(nil)
	wall := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := w.Check(m); err != nil {
		return 0, 0, 0, err
	}
	return m.Steps, m.Ticks, wall, nil
}

// runDSA times one run under the extended DSA system. The step count
// is the scalar core's retirement count; takeover-executed work shows
// up as fewer steps over the same workload, which is exactly the
// simulator cost profile the DSA mode has.
func runDSA(w *workloads.Workload) (uint64, int64, time.Duration, error) {
	s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	w.Setup(s.M)
	start := time.Now()
	err = s.Run()
	wall := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := w.Check(s.M); err != nil {
		return 0, 0, 0, err
	}
	return s.M.Steps, s.M.Ticks, wall, nil
}

func measure(w *workloads.Workload, mode string, reps int) (Result, error) {
	r := Result{Workload: w.Name, Mode: mode}
	for i := 0; i < reps; i++ {
		var (
			steps uint64
			ticks int64
			wall  time.Duration
			err   error
		)
		if mode == "scalar" {
			steps, ticks, wall, err = runScalar(w)
		} else {
			steps, ticks, wall, err = runDSA(w)
		}
		if err != nil {
			return r, err
		}
		if i == 0 || wall.Nanoseconds() < r.WallNS {
			r.WallNS = wall.Nanoseconds()
		}
		r.Steps, r.Ticks = steps, ticks
	}
	r.StepsPerSec = float64(r.Steps) / (float64(r.WallNS) * 1e-9)
	return r, nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per measurement (best kept)")
	flag.Parse()

	f := File{
		Schema:    "bench_sim/v1",
		GoVersion: runtime.Version(),
		Reps:      *reps,
		Workloads: experiments.Article1Workloads,
		Totals:    map[string]Totals{},
	}
	for _, mode := range []string{"scalar", "dsa-extended"} {
		var tot Totals
		for _, name := range experiments.Article1Workloads {
			w, err := workloads.ByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
				os.Exit(1)
			}
			r, err := measure(w, mode, *reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsim: %s/%s: %v\n", name, mode, err)
				os.Exit(1)
			}
			f.Results = append(f.Results, r)
			tot.Steps += r.Steps
			tot.WallNS += r.WallNS
			fmt.Printf("%-12s %-12s %9d steps  %8.2f ms  %7.1f Msteps/s\n",
				name, mode, r.Steps, float64(r.WallNS)/1e6, r.StepsPerSec/1e6)
		}
		tot.StepsPerSec = float64(tot.Steps) / (float64(tot.WallNS) * 1e-9)
		f.Totals[mode] = tot
		fmt.Printf("%-12s %-12s %9d steps  %8.2f ms  %7.1f Msteps/s\n",
			"TOTAL", mode, tot.Steps, float64(tot.WallNS)/1e6, tot.StepsPerSec/1e6)
	}

	b, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchsim: wrote %s\n", *out)
}
