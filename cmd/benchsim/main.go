// Command benchsim measures simulator throughput — how fast the host
// interpreter retires simulated instructions — and persists the result
// as BENCH_sim.json so interpreter-performance regressions show up in
// review as a diff, not as a vague feeling that CI got slower.
//
// Unlike bench_test.go, which reports the *simulated machine's*
// behaviour (ticks, speedups, energy), this tool times the simulator
// itself: wall-clock per workload run, in scalar mode and under the
// original and extended DSA systems. Machine construction and workload
// setup are excluded — they are one-time costs dominated by zeroing
// the 16 MiB memory image, not interpreter work.
//
// Under a DSA mode the scalar core retires FEWER instructions for the
// same workload (vectorized windows execute on the NEON model), so
// raw retired-steps-per-second would flatter slow DSA runs. Each
// result therefore also carries equivalent_scalar_steps — the steps
// the scalar interpreter retires for the identical workload — and
// eq_steps_per_sec normalizes wall-clock against THAT, making the
// number comparable across modes: it answers "how fast does this mode
// get through the same work", not "how fast does it spin".
//
// Usage: go run ./cmd/benchsim -out BENCH_sim.json [-reps 3]
// Each (workload, mode) pair runs reps times; the fastest wall time is
// kept (minimum-of-N rejects scheduler noise, the standard practice
// for throughput benchmarks).
//
// With -baseline <file>, benchsim additionally compares the measured
// dsa-extended/scalar wall-clock ratio against the baseline file's and
// exits non-zero when it regressed by more than -slack (default 10%).
// The ratio — not absolute wall time — is compared, so the gate is
// meaningful on CI hosts of any speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// Result is one (workload, mode) throughput measurement.
type Result struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Steps    uint64 `json:"steps"`   // simulated instructions retired by the scalar core
	Ticks    int64  `json:"ticks"`   // simulated time consumed
	WallNS   int64  `json:"wall_ns"` // host wall-clock, best of reps
	// EqScalarSteps is the scalar-mode retirement count for the same
	// workload — the common work denominator across modes.
	EqScalarSteps uint64  `json:"equivalent_scalar_steps"`
	EqStepsPerSec float64 `json:"eq_steps_per_sec"` // EqScalarSteps / wall
}

// Totals aggregates one mode across the whole suite.
type Totals struct {
	Steps         uint64  `json:"steps"`
	WallNS        int64   `json:"wall_ns"`
	EqScalarSteps uint64  `json:"equivalent_scalar_steps"`
	EqStepsPerSec float64 `json:"eq_steps_per_sec"`
}

// File is the BENCH_sim.json layout.
type File struct {
	Schema    string            `json:"schema"`
	GoVersion string            `json:"go_version"`
	Reps      int               `json:"reps"`
	Workloads []string          `json:"workloads"`
	Results   []Result          `json:"results"`
	Totals    map[string]Totals `json:"totals"`
}

var modes = []string{"scalar", "dsa-original", "dsa-extended"}

// runScalar times one scalar-mode run; returns steps, ticks, wall.
func runScalar(w *workloads.Workload) (uint64, int64, time.Duration, error) {
	m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
	w.Setup(m)
	start := time.Now()
	err := m.Run(nil)
	wall := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := w.Check(m); err != nil {
		return 0, 0, 0, err
	}
	return m.Steps, m.Ticks, wall, nil
}

// runDSA times one run under a DSA system. The step count is the
// scalar core's retirement count; takeover-executed work shows up as
// fewer steps over the same workload, which is exactly the simulator
// cost profile the DSA modes have.
func runDSA(w *workloads.Workload, cfg dsa.Config) (uint64, int64, time.Duration, error) {
	s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	w.Setup(s.M)
	start := time.Now()
	err = s.Run()
	wall := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := w.Check(s.M); err != nil {
		return 0, 0, 0, err
	}
	return s.M.Steps, s.M.Ticks, wall, nil
}

func measure(w *workloads.Workload, mode string, reps int) (Result, error) {
	r := Result{Workload: w.Name, Mode: mode}
	for i := 0; i < reps; i++ {
		var (
			steps uint64
			ticks int64
			wall  time.Duration
			err   error
		)
		switch mode {
		case "scalar":
			steps, ticks, wall, err = runScalar(w)
		case "dsa-original":
			steps, ticks, wall, err = runDSA(w, dsa.OriginalConfig())
		default:
			steps, ticks, wall, err = runDSA(w, dsa.DefaultConfig())
		}
		if err != nil {
			return r, err
		}
		if i == 0 || wall.Nanoseconds() < r.WallNS {
			r.WallNS = wall.Nanoseconds()
		}
		r.Steps, r.Ticks = steps, ticks
	}
	return r, nil
}

// checkBaseline enforces the wall-clock regression gate: the measured
// dsa-extended/scalar ratio must not exceed the baseline's by more
// than slack (1.10 = +10%).
func checkBaseline(f *File, path string, slack float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	ratio := func(file *File) (float64, error) {
		dx, ok1 := file.Totals["dsa-extended"]
		sc, ok2 := file.Totals["scalar"]
		if !ok1 || !ok2 || sc.WallNS == 0 {
			return 0, fmt.Errorf("missing scalar/dsa-extended totals")
		}
		return float64(dx.WallNS) / float64(sc.WallNS), nil
	}
	now, err := ratio(f)
	if err != nil {
		return err
	}
	was, err := ratio(&base)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("benchsim: dsa-extended/scalar wall ratio %.3f (baseline %.3f, slack ×%.2f)\n",
		now, was, slack)
	if now > was*slack {
		return fmt.Errorf("dsa-extended wall-clock regressed: ratio %.3f > baseline %.3f × %.2f",
			now, was, slack)
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per measurement (best kept)")
	baseline := flag.String("baseline", "", "baseline BENCH_sim.json to gate the dsa-extended/scalar ratio against")
	slack := flag.Float64("slack", 1.10, "allowed ratio regression factor vs -baseline")
	flag.Parse()

	f := File{
		Schema:    "bench_sim/v2",
		GoVersion: runtime.Version(),
		Reps:      *reps,
		Workloads: experiments.Article1Workloads,
		Totals:    map[string]Totals{},
	}
	// Scalar retirement counts per workload: the eq-steps denominator
	// for every mode (for scalar itself, eq steps == steps).
	scalarSteps := map[string]uint64{}
	for _, mode := range modes {
		var tot Totals
		for _, name := range experiments.Article1Workloads {
			w, err := workloads.ByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
				os.Exit(1)
			}
			r, err := measure(w, mode, *reps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsim: %s/%s: %v\n", name, mode, err)
				os.Exit(1)
			}
			if mode == "scalar" {
				scalarSteps[name] = r.Steps
			}
			r.EqScalarSteps = scalarSteps[name]
			r.EqStepsPerSec = float64(r.EqScalarSteps) / (float64(r.WallNS) * 1e-9)
			f.Results = append(f.Results, r)
			tot.Steps += r.Steps
			tot.WallNS += r.WallNS
			tot.EqScalarSteps += r.EqScalarSteps
			fmt.Printf("%-12s %-14s %9d steps  %8.2f ms  %7.1f eq-Msteps/s\n",
				name, mode, r.Steps, float64(r.WallNS)/1e6, r.EqStepsPerSec/1e6)
		}
		tot.EqStepsPerSec = float64(tot.EqScalarSteps) / (float64(tot.WallNS) * 1e-9)
		f.Totals[mode] = tot
		fmt.Printf("%-12s %-14s %9d steps  %8.2f ms  %7.1f eq-Msteps/s\n",
			"TOTAL", mode, tot.Steps, float64(tot.WallNS)/1e6, tot.EqStepsPerSec/1e6)
	}

	if *baseline != "" {
		if err := checkBaseline(&f, *baseline, *slack); err != nil {
			fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
			os.Exit(1)
		}
	}

	b, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchsim: wrote %s\n", *out)
}
