package repro

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// Simulator-throughput benchmarks: these time the host interpreter
// itself (wall-clock, steps/sec) rather than the simulated machine.
// Machine construction and workload setup run outside the timer —
// they are dominated by zeroing the 16 MiB memory image, not by
// interpreter work. cmd/benchsim persists the same measurement to
// BENCH_sim.json; these exist so `go test -bench` and pprof see it.

// BenchmarkSimThroughputScalar runs the Article-1 suite in scalar mode
// and reports retired simulated instructions per second.
func BenchmarkSimThroughputScalar(b *testing.B) {
	var steps uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var ms []*cpu.Machine
		for _, name := range experiments.Article1Workloads {
			w, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			m := cpu.MustNew(w.Scalar(), cpu.DefaultConfig())
			w.Setup(m)
			ms = append(ms, m)
		}
		b.StartTimer()
		for _, m := range ms {
			if err := m.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		steps = 0
		for _, m := range ms {
			steps += m.Steps
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkSimThroughputDSA is the same measurement with the extended
// DSA system attached — detection, analysis and takeovers included.
func BenchmarkSimThroughputDSA(b *testing.B) {
	var steps uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var ss []*dsa.System
		for _, name := range experiments.Article1Workloads {
			w, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			w.Setup(s.M)
			ss = append(ss, s)
		}
		b.StartTimer()
		for _, s := range ss {
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		steps = 0
		for _, s := range ss {
			steps += s.M.Steps
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}
