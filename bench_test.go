// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the dissertation's evaluation, plus ablation
// benches for the design choices DESIGN.md calls out. Custom metrics
// report the simulated machine's behaviour (ticks, speedups, energy),
// which is what the paper's artifacts show — wall-clock ns/op only
// measures the simulator itself.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dsa"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// run executes one workload/mode pair once and fails the benchmark on
// any verification error.
func run(b *testing.B, name string, mode experiments.Mode) *experiments.Result {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	r, err := experiments.Run(w, mode)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// benchRows runs a set of workloads under a mode once per b.N and
// reports per-workload speedups as custom metrics.
func benchRows(b *testing.B, names []string, modes []experiments.Mode) {
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			s := run(b, name, experiments.ModeScalar)
			for _, mode := range modes {
				r := run(b, name, mode)
				if i == b.N-1 {
					b.ReportMetric(float64(s.Ticks)/float64(r.Ticks),
						fmt.Sprintf("%s/%s-speedup", name, shortMode(mode)))
				}
			}
		}
	}
}

func shortMode(m experiments.Mode) string {
	switch m {
	case experiments.ModeAutoVec:
		return "autovec"
	case experiments.ModeHand:
		return "hand"
	case experiments.ModeDSAOrig:
		return "dsa-orig"
	case experiments.ModeDSAExt:
		return "dsa-ext"
	default:
		return string(m)
	}
}

// --- Article 1 ------------------------------------------------------

// BenchmarkArticle1Fig12 regenerates Fig. 12 of Article 1: NEON
// auto-vectorization vs original DSA over the ARM original execution.
func BenchmarkArticle1Fig12(b *testing.B) {
	benchRows(b, experiments.Article1Workloads,
		[]experiments.Mode{experiments.ModeAutoVec, experiments.ModeDSAOrig})
}

// BenchmarkArticle1Table3 reports the published DSA area overheads as
// metrics (measured by RTL synthesis in the paper; carried through).
func BenchmarkArticle1Table3(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(2.18, "dsa-logic-area-%")
	b.ReportMetric(10.37, "dsa-total-area-%")
}

// --- Article 2 ------------------------------------------------------

// BenchmarkArticle2Fig16 regenerates Fig. 16 of Article 2: autovec vs
// original DSA vs extended DSA.
func BenchmarkArticle2Fig16(b *testing.B) {
	benchRows(b, experiments.Article2Workloads,
		[]experiments.Mode{experiments.ModeAutoVec, experiments.ModeDSAOrig, experiments.ModeDSAExt})
}

// BenchmarkArticle2Table3 regenerates the DSA detection-latency table:
// analysis time as a share of execution (hidden behind the core).
func BenchmarkArticle2Table3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range experiments.Article2Workloads {
			r := run(b, name, experiments.ModeDSAExt)
			if i == b.N-1 && r.DSA != nil {
				b.ReportMetric(r.DSA.DetectionShare(r.Ticks)*100, name+"/detect-%")
			}
		}
	}
}

// --- Article 3 (DATE) -----------------------------------------------

// BenchmarkArticle3Fig7 regenerates the loop-type census.
func BenchmarkArticle3Fig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range workloads.Names() {
			r := run(b, name, experiments.ModeDSAExt)
			if i == b.N-1 && r.DSA != nil {
				var total uint64
				for _, n := range r.DSA.ByKind {
					total += n
				}
				if total == 0 {
					continue
				}
				for kind, n := range r.DSA.ByKind {
					b.ReportMetric(float64(n)/float64(total)*100,
						fmt.Sprintf("%s/%s-%%", name, kind))
				}
			}
		}
	}
}

// BenchmarkArticle3Fig8 regenerates the DATE headline: autovec vs
// hand-coded vs extended DSA speedups.
func BenchmarkArticle3Fig8(b *testing.B) {
	benchRows(b, workloads.Names(),
		[]experiments.Mode{experiments.ModeAutoVec, experiments.ModeHand, experiments.ModeDSAExt})
}

// BenchmarkArticle3Fig9 regenerates the energy-savings figure.
func BenchmarkArticle3Fig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range workloads.Names() {
			s := run(b, name, experiments.ModeScalar)
			r := run(b, name, experiments.ModeDSAExt)
			if i == b.N-1 {
				b.ReportMetric((1-r.Energy.Total()/s.Energy.Total())*100, name+"/energy-savings-%")
			}
		}
	}
}

// BenchmarkArticle3Table2 is the detection-latency table over the full
// DATE suite.
func BenchmarkArticle3Table2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range workloads.Names() {
			r := run(b, name, experiments.ModeDSAExt)
			if i == b.N-1 && r.DSA != nil {
				b.ReportMetric(r.DSA.DetectionShare(r.Ticks)*100, name+"/detect-%")
			}
		}
	}
}

// BenchmarkArticle3Table3 reports the DSA logic's share of total
// energy per benchmark.
func BenchmarkArticle3Table3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range workloads.Names() {
			r := run(b, name, experiments.ModeDSAExt)
			if i == b.N-1 && r.Energy.Total() > 0 {
				b.ReportMetric(r.Energy.DSA/r.Energy.Total()*100, name+"/dsa-energy-%")
			}
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md §5) -----------

// partialBench runs a loop with an 8-iteration dependency distance
// (the Fig. 14 shape) under the given DSA configuration.
func partialBench(b *testing.B, cfg dsa.Config) int64 {
	b.Helper()
	const src = `
        mov   r5, #0x1000     ; read cursor v[i]
        mov   r2, #0x1020     ; write cursor v[i+8]
        mov   r0, #0
        mov   r4, #2000
loop:   ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, r4
        blt   loop
        halt
`
	prog, err := asm.Assemble("partial", src)
	if err != nil {
		b.Fatal(err)
	}
	s, err := dsa.NewSystem(prog, cpu.DefaultConfig(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int32, 2100)
	for i := range vals {
		vals[i] = int32(i)
	}
	s.M.Mem.WriteWords(0x1000, vals)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	return s.M.Ticks
}

// leftoverSystem runs a vector sum whose trip count (21, Fig. 26) is
// not a lane multiple, repeated across many entries so the leftover
// strategy dominates. Arrays are padded so Larger Arrays stays safe.
func leftoverSystem(b *testing.B, policy dsa.LeftoverPolicy) int64 {
	b.Helper()
	const src = `
        mov   r8, #0
outer:  mov   r5, #0x1000
        mov   r10, #0x2000
        mov   r2, #0x3000
        mov   r0, #0
loop:   ldr   r3, [r5], #4
        ldr   r1, [r10], #4
        add   r3, r3, r1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #21
        blt   loop
        add   r8, r8, #1
        cmp   r8, #200
        blt   outer
        halt
`
	prog, err := asm.Assemble("leftover", src)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dsa.DefaultConfig()
	cfg.Leftover = policy
	s, err := dsa.NewSystem(prog, cpu.DefaultConfig(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int32, 32) // padded past 21 for LeftoverLarger
	for i := range vals {
		vals[i] = int32(i)
	}
	s.M.Mem.WriteWords(0x1000, vals)
	s.M.Mem.WriteWords(0x2000, vals)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	got, err := s.M.Mem.ReadWords(0x3000, 21)
	if err != nil {
		b.Fatal(err)
	}
	for i := range got {
		if got[i] != int32(2*i) {
			b.Fatalf("policy %v: word %d = %d, want %d", policy, i, got[i], 2*i)
		}
	}
	return s.M.Ticks
}

// BenchmarkAblationLeftover compares the §4.8 leftover strategies on a
// loop with a non-multiple trip count.
func BenchmarkAblationLeftover(b *testing.B) {
	policies := []dsa.LeftoverPolicy{
		dsa.LeftoverSingle, dsa.LeftoverOverlap, dsa.LeftoverLarger, dsa.LeftoverScalar,
	}
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			t := leftoverSystem(b, p)
			if i == b.N-1 {
				b.ReportMetric(float64(t), p.String()+"-ticks")
			}
		}
	}
}

// BenchmarkAblationPartialVec measures partial vectorization on/off on
// the dependency-window microbenchmark from the DSA test suite.
func BenchmarkAblationPartialVec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, on := range []bool{false, true} {
			cfg := dsa.DefaultConfig()
			cfg.EnablePartial = on
			ticks := partialBench(b, cfg)
			if i == b.N-1 {
				label := "off"
				if on {
					label = "on"
				}
				b.ReportMetric(float64(ticks), "partial-"+label+"-ticks")
			}
		}
	}
}

// BenchmarkAblationDSACacheSize sweeps the DSA cache capacity over a
// synthetic program with 32 distinct hot loops: at 1 kB (16 entries)
// the cache thrashes and every re-entry pays a full analysis; at 8 kB
// every loop hits.
func BenchmarkAblationDSACacheSize(b *testing.B) {
	var src string
	src += "        mov   r8, #0\nouter:\n"
	for l := 0; l < 32; l++ {
		src += fmt.Sprintf(`
        mov   r5, #0x1000
        mov   r2, #0x3000
        mov   r0, #0
loop%d:  ldr   r3, [r5], #4
        add   r3, r3, #1
        str   r3, [r2], #4
        add   r0, r0, #1
        cmp   r0, #32
        blt   loop%d
`, l, l)
	}
	src += `
        add   r8, r8, #1
        cmp   r8, #4
        blt   outer
        halt
`
	prog, err := asm.Assemble("manyloops", src)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{1, 4, 8, 16} {
			cfg := dsa.DefaultConfig()
			cfg.DSACacheBytes = kb << 10
			s, err := dsa.NewSystem(prog, cpu.DefaultConfig(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			vals := make([]int32, 64)
			s.M.Mem.WriteWords(0x1000, vals)
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(s.M.Ticks), fmt.Sprintf("cache-%dkb-ticks", kb))
				b.ReportMetric(float64(s.Stats().DSACacheHits), fmt.Sprintf("cache-%dkb-hits", kb))
			}
		}
	}
}

// BenchmarkAblationSentinelRange compares first-entry speculation
// against the learned-range policy on the sentinel workload.
func BenchmarkAblationSentinelRange(b *testing.B) {
	w, err := workloads.ByName("str_prep")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), dsa.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		w.Setup(s.M)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if err := w.Check(s.M); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(s.M.Ticks), "learned-range-ticks")
			b.ReportMetric(float64(s.Stats().VectorizedIters), "simd-iters")
		}
	}
}

// BenchmarkAblationConditionalMode compares the two conditional-loop
// execution modes on the conditional-heavy benchmarks: the paper's
// literal per-iteration mapped mode (Fig. 21/22) against the
// full-speculation mode where the guard itself runs at vector width
// (see DESIGN.md's substitution notes).
func BenchmarkAblationConditionalMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"dijkstra", "bit_count", "susan_e"} {
			w, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, guardVec := range []bool{false, true} {
				cfg := dsa.DefaultConfig()
				cfg.EnableGuardVec = guardVec
				s, err := dsa.NewSystem(w.Scalar(), cpu.DefaultConfig(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				w.Setup(s.M)
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				if err := w.Check(s.M); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					label := "mapped"
					if guardVec {
						label = "guardvec"
					}
					b.ReportMetric(float64(s.M.Ticks), name+"/"+label+"-ticks")
				}
			}
		}
	}
}
